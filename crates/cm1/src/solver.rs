//! The iteration driver: compute phases, halo exchanges, periodic write
//! phases through a pluggable I/O backend — CM1's "typical behavior of
//! scientific simulations which alternate computation phases and I/O
//! phases" (§IV-A).

use crate::checkpoint::{CheckpointPolicy, ProgState};
use crate::decomp::Decomp2d;
use crate::grid::{Field3, Side};
use crate::io::{IoBackend, IoError, WritePhase, WriteStats};
use crate::physics::{self, PhysicsParams};
use crate::variables::variable_names;
use bytes::Bytes;
use damaris_mpi::Communicator;
use std::collections::HashMap;

/// Run configuration for the proxy CM1.
#[derive(Debug, Clone)]
pub struct Cm1Config {
    /// Global domain (x, y, z) in grid points.
    pub global: (usize, usize, usize),
    /// Total iterations.
    pub iterations: u32,
    /// Iterations between write phases.
    pub write_every: u32,
    /// Enabled output variables (out of [`crate::variables::ALL_VARIABLES`]).
    pub n_variables: usize,
    /// Physics parameters.
    pub physics: PhysicsParams,
    /// Warm-bubble amplitude (K).
    pub bubble_amplitude: f32,
}

impl Cm1Config {
    /// A quick configuration for tests and examples: small domain, a few
    /// iterations, two write phases.
    pub fn small_test(nprocs: usize) -> Self {
        // A domain every reasonable process count divides.
        let side = 24 * nprocs.div_ceil(4).max(1);
        Cm1Config {
            global: (side, side, 8),
            iterations: 4,
            write_every: 2,
            n_variables: 5,
            physics: PhysicsParams {
                dt: 1.0,
                dx: 500.0,
                ..Default::default()
            },
            bubble_amplitude: 5.0,
        }
    }

    /// Output bytes per rank per write phase.
    pub fn bytes_per_rank(&self, decomp: &Decomp2d) -> u64 {
        let (nx, ny, nz) = decomp.local_extent();
        (nx * ny * nz * 4 * self.n_variables) as u64
    }
}

/// Per-rank result of a run.
#[derive(Debug, Clone)]
pub struct RankResult {
    /// Iterations executed.
    pub iterations: u32,
    /// Write phases performed.
    pub write_phases: u32,
    /// Stats of each write phase, as the simulation saw it.
    pub write_stats: Vec<WriteStats>,
    /// Global sum of `theta` at the end — identical on every rank, and
    /// identical across I/O backends (I/O must not perturb physics).
    pub theta_checksum: f64,
}

/// Exchanges one field's halos with the four neighbours.
fn halo_exchange(
    comm: &Communicator,
    decomp: &Decomp2d,
    field: &mut Field3,
    tag_base: u32,
) {
    // Post all sends first (transport is buffered, so this cannot block),
    // then receive. Tag encodes the side the data was extracted from.
    for (s, side) in Side::ALL.iter().enumerate() {
        let plane = field.extract_plane(*side);
        let bytes: Vec<u8> = plane.iter().flat_map(|v| v.to_le_bytes()).collect();
        comm.send(
            decomp.neighbor(comm.rank(), *side),
            tag_base + s as u32,
            Bytes::from(bytes),
        );
    }
    for (s, side) in Side::ALL.iter().enumerate() {
        let from = decomp.neighbor(comm.rank(), side.opposite());
        let msg = comm.recv_expect(from, tag_base + s as u32);
        let plane: Vec<f32> = msg
            .data
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        field.install_ghost(side.opposite(), &plane);
    }
}

/// Runs the proxy CM1 on this rank. All ranks of the communicator must
/// call it with the same configuration.
pub fn run_rank(
    comm: &Communicator,
    config: &Cm1Config,
    io: &mut dyn IoBackend,
) -> Result<RankResult, IoError> {
    run_rank_with(comm, config, io, None, None)
}

/// [`run_rank`] with checkpoint/restart: writes a checkpoint every
/// `ckpt.every` iterations, and — when `restart_from` names an iteration —
/// loads that checkpoint and resumes *bit-exactly* from the following
/// iteration (verified by the equivalence tests).
pub fn run_rank_with(
    comm: &Communicator,
    config: &Cm1Config,
    io: &mut dyn IoBackend,
    ckpt: Option<&CheckpointPolicy>,
    restart_from: Option<u32>,
) -> Result<RankResult, IoError> {
    let (gx, gy, gz) = config.global;
    let decomp = Decomp2d::auto(comm.size(), gx, gy, gz).map_err(IoError::msg)?;
    let (nx, ny, nz) = decomp.local_extent();
    let origin = decomp.local_origin(comm.rank());
    let p = &config.physics;
    assert!(p.cfl() < 1.0, "unstable configuration: CFL {}", p.cfl());
    assert!(
        p.diffusion_number() < 0.25,
        "unstable diffusion number {}",
        p.diffusion_number()
    );

    // Prognostic fields.
    let mut theta = Field3::new(nx, ny, nz, 1);
    physics::init_warm_bubble(&mut theta, origin, config.global, p.theta0, config.bubble_amplitude);
    let mut qv = Field3::filled(nx, ny, nz, 1, 0.012);
    physics::init_warm_bubble(&mut qv, origin, config.global, 0.012, 0.004);
    // Diagnostics and background wind.
    let mut fields: HashMap<&'static str, Field3> = HashMap::new();
    fields.insert("u", Field3::filled(nx, ny, nz, 1, p.u0));
    fields.insert("v", Field3::filled(nx, ny, nz, 1, p.v0));
    fields.insert("w", Field3::new(nx, ny, nz, 1));
    fields.insert("prs", Field3::new(nx, ny, nz, 1));
    fields.insert("dbz", Field3::new(nx, ny, nz, 1));
    fields.insert("tke", Field3::new(nx, ny, nz, 1));

    // Restart: replace the prognostic state with the checkpointed one.
    let first_iteration = match restart_from {
        Some(iteration) => {
            let policy = ckpt.ok_or_else(|| {
                IoError("restart_from requires a checkpoint policy".into())
            })?;
            let (t, q, w) =
                crate::checkpoint::read_checkpoint(policy, comm.rank(), iteration, (nx, ny, nz), 1)?;
            theta = t;
            qv = q;
            fields.insert("w", w);
            iteration + 1
        }
        None => 1,
    };

    let mut write_stats = Vec::new();
    let mut write_phases = 0u32;

    for iteration in first_iteration..=config.iterations {
        // Compute phase: exchange halos, advance prognostics, update
        // diagnostics.
        halo_exchange(comm, &decomp, &mut theta, 100);
        halo_exchange(comm, &decomp, &mut qv, 200);
        theta = physics::advect_diffuse(&theta, p);
        qv = physics::advect_diffuse(&qv, p);
        {
            let [w, prs, dbz, tke] = fields
                .get_disjoint_mut(["w", "prs", "dbz", "tke"])
                .map(|f| f.expect("field exists"));
            physics::update_diagnostics(&theta, w, prs, dbz, tke, p);
        }

        // I/O phase.
        if iteration % config.write_every == 0 {
            comm.barrier(); // the explicit barrier that makes I/O bursts
            let mut outputs: Vec<(&'static str, Vec<f32>)> = Vec::new();
            for name in variable_names(config.n_variables) {
                let data = match *name {
                    "theta" => theta.interior(),
                    "qv" => qv.interior(),
                    other => fields[other].interior(),
                };
                outputs.push((name, data));
            }
            let phase = WritePhase {
                iteration,
                rank: comm.rank(),
                nprocs: comm.size(),
                extent: (nx, ny, nz),
                variables: outputs,
            };
            let t0 = std::time::Instant::now();
            let stats = io.write_phase(comm, &phase)?;
            let _ = t0; // backends report their own timing inside stats
            write_stats.push(stats);
            write_phases += 1;
            comm.barrier();
        }

        // Defensive checkpoint (SCR-style periodic snapshots, §V-B).
        if let Some(policy) = ckpt {
            if iteration % policy.every == 0 {
                crate::checkpoint::write_checkpoint(
                    policy,
                    comm.rank(),
                    iteration,
                    ProgState {
                        theta: &theta,
                        qv: &qv,
                        w: &fields["w"],
                    },
                )?;
            }
        }
    }

    io.finalize(comm)?;
    let theta_checksum = comm.allreduce_sum_f64(&[theta.interior_sum()])[0];
    Ok(RankResult {
        iterations: config.iterations,
        write_phases,
        write_stats,
        theta_checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::NullBackend;
    use damaris_mpi::World;

    #[test]
    fn physics_is_identical_across_rank_counts() {
        // The same global problem on 1, 2 and 4 ranks must give the same
        // final checksum (deterministic parallelization).
        let mut sums = Vec::new();
        for nprocs in [1, 2, 4] {
            let config = Cm1Config {
                global: (16, 16, 4),
                iterations: 6,
                write_every: 3,
                n_variables: 4,
                physics: PhysicsParams::default(),
                bubble_amplitude: 5.0,
            };
            let results = World::run(nprocs, |comm| {
                let mut io = NullBackend;
                run_rank(comm, &config, &mut io).unwrap().theta_checksum
            });
            // All ranks agree.
            for r in &results {
                assert!((r - results[0]).abs() < 1e-9);
            }
            sums.push(results[0]);
        }
        assert!(
            (sums[0] - sums[1]).abs() < 1e-6 && (sums[1] - sums[2]).abs() < 1e-6,
            "{sums:?}"
        );
    }

    #[test]
    fn write_phases_follow_cadence() {
        let config = Cm1Config {
            global: (8, 8, 2),
            iterations: 10,
            write_every: 4,
            n_variables: 2,
            physics: PhysicsParams::default(),
            bubble_amplitude: 2.0,
        };
        let results = World::run(2, |comm| {
            let mut io = NullBackend;
            run_rank(comm, &config, &mut io).unwrap()
        });
        assert!(results.iter().all(|r| r.write_phases == 2));
        assert!(results.iter().all(|r| r.write_stats.len() == 2));
    }

    #[test]
    fn mass_conserved_across_ranks() {
        let config = Cm1Config {
            global: (24, 24, 4),
            iterations: 8,
            write_every: 100, // no I/O
            n_variables: 1,
            physics: PhysicsParams::default(),
            bubble_amplitude: 5.0,
        };
        let initial_mass: f64 = {
            // theta0 everywhere + bubble: compute by initializing once.
            let mut f = Field3::new(24, 24, 4, 1);
            physics::init_warm_bubble(&mut f, (0, 0), (24, 24, 4), 300.0, 5.0);
            f.interior_sum()
        };
        let results = World::run(4, |comm| {
            let mut io = NullBackend;
            run_rank(comm, &config, &mut io).unwrap().theta_checksum
        });
        let rel = ((results[0] - initial_mass) / initial_mass).abs();
        assert!(rel < 1e-5, "mass drift {rel}");
    }
}
