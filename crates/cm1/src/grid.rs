//! 3D fields with horizontal halo cells.
//!
//! CM1 splits its fixed 3D domain along a 2D (x, y) process grid; each
//! process holds full z-columns. A [`Field3`] therefore carries one layer
//! of ghost cells in x and y only.

/// A local 3D scalar field: `nx × ny × nz` interior points plus a
/// `halo`-wide ghost layer in x and y. Storage is row-major `(x, y, z)`
/// with z fastest.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub halo: usize,
    data: Vec<f32>,
}

impl Field3 {
    /// Zero-filled field.
    pub fn new(nx: usize, ny: usize, nz: usize, halo: usize) -> Self {
        let sx = nx + 2 * halo;
        let sy = ny + 2 * halo;
        Field3 {
            nx,
            ny,
            nz,
            halo,
            data: vec![0.0; sx * sy * nz],
        }
    }

    /// Constant-filled field.
    pub fn filled(nx: usize, ny: usize, nz: usize, halo: usize, value: f32) -> Self {
        let mut f = Self::new(nx, ny, nz, halo);
        f.data.fill(value);
        f
    }

    #[inline]
    fn stride_y(&self) -> usize {
        self.nz
    }

    #[inline]
    fn stride_x(&self) -> usize {
        (self.ny + 2 * self.halo) * self.nz
    }

    /// Flat index of interior coordinate `(i, j, k)`; `i ∈ -halo..nx+halo`
    /// etc. are valid for ghost access.
    #[inline]
    pub fn idx(&self, i: isize, j: isize, k: usize) -> usize {
        let h = self.halo as isize;
        debug_assert!(i >= -h && i < self.nx as isize + h, "i={i}");
        debug_assert!(j >= -h && j < self.ny as isize + h, "j={j}");
        debug_assert!(k < self.nz);
        ((i + h) as usize) * self.stride_x() + ((j + h) as usize) * self.stride_y() + k
    }

    /// Value at `(i, j, k)` (ghost coordinates allowed).
    #[inline]
    pub fn at(&self, i: isize, j: isize, k: usize) -> f32 {
        self.data[self.idx(i, j, k)]
    }

    /// Mutable value at `(i, j, k)`.
    #[inline]
    pub fn at_mut(&mut self, i: isize, j: isize, k: usize) -> &mut f32 {
        let idx = self.idx(i, j, k);
        &mut self.data[idx]
    }

    /// Copies the interior (no ghosts) into a flat `nx·ny·nz` vector in
    /// row-major (x, y, z) order — what the I/O phase writes.
    pub fn interior(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.nx * self.ny * self.nz);
        for i in 0..self.nx as isize {
            for j in 0..self.ny as isize {
                let base = self.idx(i, j, 0);
                out.extend_from_slice(&self.data[base..base + self.nz]);
            }
        }
        out
    }

    /// Loads interior values from a flat vector (inverse of [`interior`]).
    ///
    /// [`interior`]: Field3::interior
    pub fn set_interior(&mut self, values: &[f32]) {
        assert_eq!(values.len(), self.nx * self.ny * self.nz);
        let mut src = 0;
        for i in 0..self.nx as isize {
            for j in 0..self.ny as isize {
                let base = self.idx(i, j, 0);
                self.data[base..base + self.nz].copy_from_slice(&values[src..src + self.nz]);
                src += self.nz;
            }
        }
    }

    /// Extracts a ghost-exchange plane: the `depth`-th interior x-plane
    /// from the west (`side = West`) etc., as a flat `ny·nz` or `nx·nz`
    /// vector.
    pub fn extract_plane(&self, side: Side) -> Vec<f32> {
        match side {
            Side::West | Side::East => {
                let i = if side == Side::West { 0 } else { self.nx as isize - 1 };
                let mut out = Vec::with_capacity(self.ny * self.nz);
                for j in 0..self.ny as isize {
                    let base = self.idx(i, j, 0);
                    out.extend_from_slice(&self.data[base..base + self.nz]);
                }
                out
            }
            Side::South | Side::North => {
                let j = if side == Side::South { 0 } else { self.ny as isize - 1 };
                let mut out = Vec::with_capacity(self.nx * self.nz);
                for i in 0..self.nx as isize {
                    let base = self.idx(i, j, 0);
                    out.extend_from_slice(&self.data[base..base + self.nz]);
                }
                out
            }
        }
    }

    /// Installs a received plane into the ghost layer on `side`.
    pub fn install_ghost(&mut self, side: Side, plane: &[f32]) {
        match side {
            Side::West | Side::East => {
                assert_eq!(plane.len(), self.ny * self.nz);
                let i = if side == Side::West { -1 } else { self.nx as isize };
                let mut src = 0;
                for j in 0..self.ny as isize {
                    let base = self.idx(i, j, 0);
                    self.data[base..base + self.nz].copy_from_slice(&plane[src..src + self.nz]);
                    src += self.nz;
                }
            }
            Side::South | Side::North => {
                assert_eq!(plane.len(), self.nx * self.nz);
                let j = if side == Side::South { -1 } else { self.ny as isize };
                let mut src = 0;
                for i in 0..self.nx as isize {
                    let base = self.idx(i, j, 0);
                    self.data[base..base + self.nz].copy_from_slice(&plane[src..src + self.nz]);
                    src += self.nz;
                }
            }
        }
    }

    /// Sum over interior points (for conservation checks).
    pub fn interior_sum(&self) -> f64 {
        let mut sum = 0.0f64;
        for i in 0..self.nx as isize {
            for j in 0..self.ny as isize {
                let base = self.idx(i, j, 0);
                for k in 0..self.nz {
                    sum += f64::from(self.data[base + k]);
                }
            }
        }
        sum
    }

    /// Interior element count.
    pub fn interior_len(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// Horizontal neighbours of a subdomain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    West,
    East,
    South,
    North,
}

impl Side {
    /// All four sides.
    pub const ALL: [Side; 4] = [Side::West, Side::East, Side::South, Side::North];

    /// The side a message sent from this side arrives on.
    pub fn opposite(self) -> Side {
        match self {
            Side::West => Side::East,
            Side::East => Side::West,
            Side::South => Side::North,
            Side::North => Side::South,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_roundtrip() {
        let mut f = Field3::new(3, 4, 2, 1);
        let values: Vec<f32> = (0..24).map(|v| v as f32).collect();
        f.set_interior(&values);
        assert_eq!(f.interior(), values);
        assert_eq!(f.at(0, 0, 0), 0.0);
        assert_eq!(f.at(0, 0, 1), 1.0);
        assert_eq!(f.at(2, 3, 1), 23.0);
    }

    #[test]
    fn ghosts_do_not_alias_interior() {
        let mut f = Field3::filled(2, 2, 2, 1, 5.0);
        *f.at_mut(-1, 0, 0) = 99.0;
        *f.at_mut(2, 1, 1) = 98.0;
        assert!(f.interior().iter().all(|&v| v == 5.0));
    }

    #[test]
    fn plane_exchange_roundtrip() {
        let mut a = Field3::new(3, 4, 2, 1);
        let values: Vec<f32> = (0..24).map(|v| v as f32).collect();
        a.set_interior(&values);

        for side in Side::ALL {
            let plane = a.extract_plane(side);
            let mut b = Field3::new(3, 4, 2, 1);
            b.install_ghost(side.opposite(), &plane);
            // The ghost on the opposite side matches the extracted border.
            match side {
                Side::West => assert_eq!(b.at(3, 0, 0), a.at(0, 0, 0)),
                Side::East => assert_eq!(b.at(-1, 0, 0), a.at(2, 0, 0)),
                Side::South => assert_eq!(b.at(0, 4, 1), a.at(0, 0, 1)),
                Side::North => assert_eq!(b.at(0, -1, 1), a.at(0, 3, 1)),
            }
        }
    }

    #[test]
    fn interior_sum() {
        let f = Field3::filled(2, 3, 4, 1, 2.0);
        assert_eq!(f.interior_sum(), 48.0);
        assert_eq!(f.interior_len(), 24);
    }

    #[test]
    #[should_panic]
    fn wrong_plane_size_panics() {
        let mut f = Field3::new(2, 2, 2, 1);
        f.install_ghost(Side::West, &[0.0; 3]);
    }
}
