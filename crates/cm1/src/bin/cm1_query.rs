//! In-situ query demo: run a small CM1-style simulation through the
//! threaded node, then (and concurrently) interrogate its output with
//! the `damaris-query` read tier — the "connect analysis tools to the
//! dedicated cores" direction from the paper's conclusion.
//!
//! ```text
//! cm1_query [--dir DIR] [--iterations N] [--clients N]
//! ```
//!
//! The binary writes `N` iterations of a `theta` field through the
//! client→shm→EPE→persist path while a reader thread follows the
//! manifest with a `QueryEngine`: it prints the newest iteration's
//! per-rank means as soon as each iteration is published (a live
//! probe), and finishes with a range query over the last few
//! iterations plus the cache/pruning counters.

use damaris_core::{Config, NodeRuntime};
use damaris_query::{QueryConfig, QueryEngine, RangeQuery};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const POINTS: usize = 512;

fn usage() -> ExitCode {
    eprintln!("usage: cm1_query [--dir DIR] [--iterations N] [--clients N]");
    ExitCode::FAILURE
}

fn mean(bytes: &[u8]) -> f64 {
    let values: Vec<f64> = bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

fn main() -> ExitCode {
    let mut dir = std::env::temp_dir().join(format!("cm1-query-{}", std::process::id()));
    let mut iterations: u32 = 20;
    let mut clients: usize = 4;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match (args[i].as_str(), args.get(i + 1)) {
            ("--dir", Some(v)) => dir = v.into(),
            ("--iterations", Some(v)) => match v.parse() {
                Ok(n) => iterations = n,
                Err(_) => return usage(),
            },
            ("--clients", Some(v)) => match v.parse() {
                Ok(n) => clients = n,
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }

    let cfg = Config::from_xml(&format!(
        r#"<damaris>
             <buffer size="16777216" allocator="partition" queue="256"/>
             <layout name="slab" type="double" dimensions="{POINTS}"/>
             <variable name="theta" layout="slab" unit="K"/>
           </damaris>"#
    ))
    .expect("embedded config is valid");
    let runtime = match NodeRuntime::start(cfg, clients, &dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cm1_query: start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let engine = match QueryEngine::open(&dir, QueryConfig::default()) {
        Ok(e) => Arc::new(e),
        Err(e) => {
            eprintln!("cm1_query: engine: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The live probe: follow the manifest and report each iteration's
    // per-rank mean as soon as the EPE publishes it.
    let stop = Arc::new(AtomicBool::new(false));
    let probe = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let clients = clients as u32;
        std::thread::spawn(move || {
            let mut reported: Option<u32> = None;
            while !stop.load(Ordering::Acquire) {
                let Ok(snap) = engine.refresh() else {
                    continue;
                };
                let Some(max) = snap.max_iteration() else {
                    std::thread::yield_now();
                    continue;
                };
                if reported == Some(max) {
                    std::thread::yield_now();
                    continue;
                }
                let mut means = Vec::new();
                for rank in 0..clients {
                    if let Ok(Some(block)) = engine.lookup(&snap, "theta", max, rank) {
                        means.push(format!("r{rank}={:.1}", mean(&block)));
                    }
                }
                if !means.is_empty() {
                    println!("[live] iteration {max}: {}", means.join(" "));
                    reported = Some(max);
                }
            }
        })
    };

    // The simulation: a drifting temperature field per rank.
    let handles = runtime.clients();
    for it in 0..iterations {
        for (rank, client) in handles.iter().enumerate() {
            let field: Vec<f64> = (0..POINTS)
                .map(|p| 300.0 + f64::from(it) + rank as f64 * 0.5 + (p as f64).sin())
                .collect();
            if let Err(e) = client.write_f64("theta", it, &field) {
                eprintln!("cm1_query: write: {e}");
                return ExitCode::FAILURE;
            }
        }
        for client in &handles {
            if let Err(e) = client.end_iteration(it) {
                eprintln!("cm1_query: end_iteration: {e}");
                return ExitCode::FAILURE;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    if let Err(e) = runtime.finish() {
        eprintln!("cm1_query: finish: {e}");
        return ExitCode::FAILURE;
    }
    stop.store(true, Ordering::Release);
    probe.join().expect("probe thread");

    // Post-hoc: a window query over the last three iterations.
    let snap = engine.refresh().expect("final refresh");
    let last = snap.max_iteration().unwrap_or(0);
    let window = (last.saturating_sub(2), last);
    match engine.range(
        &snap,
        &RangeQuery {
            variable: "theta",
            iterations: window,
            sources: None,
            rows: None,
        },
    ) {
        Ok(hits) => {
            println!(
                "[window] iterations {}..={}: {} blocks",
                window.0,
                window.1,
                hits.len()
            );
            for hit in hits {
                println!(
                    "  it {} rank {}: mean {:.2} ({} B)",
                    hit.iteration,
                    hit.source,
                    mean(&hit.data),
                    hit.data.len()
                );
            }
        }
        Err(e) => {
            eprintln!("cm1_query: range: {e}");
            return ExitCode::FAILURE;
        }
    }
    let stats = engine.cache_stats();
    println!(
        "[cache] hits {} misses {} evictions {} resident {} B",
        stats.hits, stats.misses, stats.evictions, stats.resident_bytes
    );
    std::fs::remove_dir_all(&dir).ok();
    ExitCode::SUCCESS
}
