//! Multi-process CM1: the proxy model running the way the original
//! Damaris deployed — compute cores and the dedicated I/O core as
//! **separate OS processes** over a file-backed shared mapping, with a
//! Unix-socket control plane.
//!
//! One binary, three roles, selected by `DAMARIS_PROC_ROLE`:
//!
//! * unset — **launcher**: parses the CM1 process config, spawns the EPE
//!   and the clients as children of this binary, optionally delivers the
//!   `kill -9` matrix, and prints the run report.
//! * `epe` — the dedicated-core process ([`damaris_core::proc::run_epe`]).
//! * `client` — one compute-core process ([`damaris_core::proc::run_client`]).
//!
//! ```text
//! cm1_proc --dir /tmp/cm1-run --clients 4
//! cm1_proc --dir /tmp/cm1-run --clients 4 --kill-rank 1 --kill-phase memcpy --kill-iter 1
//! cm1_proc --dir /tmp/cm1-run --clients 4 --kill-epe-after 3
//! ```

use damaris_core::proc::{
    launch, run_client, run_epe, ClientKillSpec, ClientOptions, EpeOptions, LaunchPlan,
};
use damaris_core::Config;
use damaris_mpi::ClientKillPhase;
use std::path::PathBuf;
use std::process::ExitCode;

/// The CM1 node configuration: file-backed shared memory and a UDS
/// control plane, a handful of prognostic variables per iteration, and
/// the partial-iteration policy so one dead rank cannot stall output.
/// Parsed through [`damaris_core::Config`] like every other deployment
/// knob, so `<shm>`/`<transport>` validation applies.
const CM1_PROC_XML: &str = r#"
<damaris>
  <buffer size="262144" allocator="partition"/>
  <shm backing="file"/>
  <transport kind="uds"/>
  <layout name="slab" type="real" dimensions="24,24,8"/>
  <variable name="theta" layout="slab"/>
  <variable name="qv" layout="slab"/>
  <resilience on_client_failure="partial" client_lease_timeout_ms="800"/>
</damaris>"#;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cm1_proc --dir DIR [--clients N] [--iterations N] \
         [--policy wait|partial|drop-iteration] \
         [--kill-rank R --kill-phase alloc|memcpy|postcommit --kill-iter I] \
         [--kill-epe-after N]"
    );
    ExitCode::FAILURE
}

fn run_launcher() -> ExitCode {
    let config = match Config::from_xml(CM1_PROC_XML) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cm1_proc: bad embedded config: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut dir: Option<PathBuf> = None;
    let mut n_clients = 4usize;
    let mut iterations = 3u32;
    let mut policy = config.resilience.on_client_failure;
    let mut kill_rank: Option<u32> = None;
    let mut kill_phase: Option<ClientKillPhase> = None;
    let mut kill_iter = 0u32;
    let mut kill_epe_after: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || args.next().ok_or(());
        let parsed = match arg.as_str() {
            "--dir" => val().map(|v| dir = Some(PathBuf::from(v))),
            "--clients" => val().and_then(|v| v.parse().map(|n| n_clients = n).map_err(|_| ())),
            "--iterations" => {
                val().and_then(|v| v.parse().map(|n| iterations = n).map_err(|_| ()))
            }
            "--policy" => val().map(|v| {
                policy = damaris_core::proc::launcher::policy_from_str(&v);
            }),
            "--kill-rank" => {
                val().and_then(|v| v.parse().map(|n| kill_rank = Some(n)).map_err(|_| ()))
            }
            "--kill-phase" => val().and_then(|v| {
                let phase = match v.as_str() {
                    "alloc" => ClientKillPhase::Alloc,
                    "memcpy" => ClientKillPhase::Memcpy,
                    "postcommit" => ClientKillPhase::PostCommit,
                    _ => return Err(()),
                };
                kill_phase = Some(phase);
                Ok(())
            }),
            "--kill-iter" => {
                val().and_then(|v| v.parse().map(|n| kill_iter = n).map_err(|_| ()))
            }
            "--kill-epe-after" => {
                val().and_then(|v| v.parse().map(|n| kill_epe_after = Some(n)).map_err(|_| ()))
            }
            _ => Err(()),
        };
        if parsed.is_err() {
            return usage();
        }
    }
    let Some(dir) = dir else {
        return usage();
    };
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cm1_proc: cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut plan = LaunchPlan::new(exe, dir, n_clients);
    plan.iterations = iterations;
    plan.policy = policy;
    plan.lease_timeout = config.resilience.client_lease_timeout;
    plan.client_kill = match (kill_rank, kill_phase) {
        (Some(rank), Some(phase)) => Some(ClientKillSpec {
            rank,
            phase,
            iteration: kill_iter,
        }),
        (None, None) => None,
        _ => return usage(),
    };
    plan.epe_kill_after = kill_epe_after;

    match launch(&plan) {
        Ok(report) => {
            println!("epe_ok={}", report.epe_ok);
            println!("epe_respawns={}", report.epe_respawns);
            println!("leaked_bytes={}", report.leaked_bytes);
            println!(
                "killed_ranks={:?} failed_ranks={:?}",
                report.killed_ranks, report.failed_ranks
            );
            println!(
                "iterations_persisted={} partial={} dropped={}",
                report.total(|r| r.iterations_persisted),
                report.total(|r| r.partial_iterations),
                report.total(|r| r.iterations_dropped),
            );
            println!("sdf_files={}", report.sdf_files.len());
            if report.epe_ok && report.leaked_bytes == 0 && report.failed_ranks.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("cm1_proc: launch failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    match std::env::var(damaris_core::proc::ENV_ROLE).as_deref() {
        Ok("epe") => {
            let opts = match EpeOptions::from_env() {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("cm1_proc[epe]: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match run_epe(&opts) {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("cm1_proc[epe]: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Ok("client") => {
            let opts = match ClientOptions::from_env() {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("cm1_proc[client]: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match run_client(&opts) {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("cm1_proc[client {}]: {e}", opts.rank);
                    ExitCode::FAILURE
                }
            }
        }
        Ok(other) => {
            eprintln!("cm1_proc: unknown role {other:?}");
            ExitCode::FAILURE
        }
        Err(_) => run_launcher(),
    }
}
