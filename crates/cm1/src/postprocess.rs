//! Post-processing: reassemble the global field from whatever files a run
//! left behind.
//!
//! The paper's motivation for gathering data into large files is exactly
//! this consumer: "reading such a huge number of files for post-processing
//! and visualization becomes intractable" with file-per-process (§II-B).
//! This module reads any of the three organizations back into one global
//! `gnx × gny × gnz` array:
//!
//! * [`Organization::FilePerProcess`] — `rank-R/iter-N.sdf`, one file per
//!   rank (N·files opened);
//! * [`Organization::Collective`] — `iter-N.sdf`, one shared file;
//! * [`Organization::Damaris`] — `node-K/iter-N.sdf`, one file per node
//!   (the gathered organization Damaris produces).

use crate::decomp::Decomp2d;
use crate::io::IoError;
use damaris_format::SdfReader;
use std::path::Path;

/// How a run's output directory is organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Organization {
    FilePerProcess,
    Collective,
    /// Damaris node files with `clients_per_node` ranks per node.
    Damaris { clients_per_node: usize },
}

/// Reads one rank's dataset for `variable` at `iteration`.
fn read_rank(
    dir: &Path,
    organization: Organization,
    rank: usize,
    iteration: u32,
    variable: &str,
) -> Result<Vec<f32>, IoError> {
    let (file, dataset) = match organization {
        Organization::FilePerProcess => (
            dir.join(format!("rank-{rank}/iter-{iteration:06}.sdf")),
            format!("/iter-{iteration}/rank-{rank}/{variable}"),
        ),
        Organization::Collective => (
            dir.join(format!("iter-{iteration:06}.sdf")),
            format!("/iter-{iteration}/rank-{rank}/{variable}"),
        ),
        Organization::Damaris { clients_per_node } => (
            dir.join(format!(
                "node-{}/iter-{iteration:06}.sdf",
                rank / clients_per_node
            )),
            // Damaris sources are node-local client ids.
            format!(
                "/iter-{iteration}/rank-{}/{variable}",
                rank % clients_per_node
            ),
        ),
    };
    let reader = SdfReader::open(&file)
        .map_err(|e| IoError(format!("{}: {e}", file.display())))?;
    reader.read_f32(&dataset).map_err(IoError::from)
}

/// Reassembles the global field of `variable` at `iteration`. Returns a
/// row-major `(x, y, z)` array of `gnx·gny·gnz` values.
pub fn read_global(
    dir: &Path,
    organization: Organization,
    decomp: &Decomp2d,
    iteration: u32,
    variable: &str,
) -> Result<Vec<f32>, IoError> {
    let (lnx, lny, lnz) = decomp.local_extent();
    let mut global = vec![0.0f32; decomp.gnx * decomp.gny * decomp.gnz];
    for rank in 0..decomp.nprocs() {
        let local = read_rank(dir, organization, rank, iteration, variable)?;
        if local.len() != lnx * lny * lnz {
            return Err(IoError(format!(
                "rank {rank}: dataset has {} values, subdomain needs {}",
                local.len(),
                lnx * lny * lnz
            )));
        }
        let (ox, oy) = decomp.local_origin(rank);
        for i in 0..lnx {
            for j in 0..lny {
                let src = (i * lny + j) * lnz;
                let gx = ox + i;
                let gy = oy + j;
                let dst = (gx * decomp.gny + gy) * decomp.gnz;
                global[dst..dst + lnz].copy_from_slice(&local[src..src + lnz]);
            }
        }
    }
    Ok(global)
}

/// Number of files a consumer must open per iteration for each
/// organization — the paper's metadata-pressure argument in one function.
pub fn files_per_iteration(organization: Organization, nprocs: usize) -> usize {
    match organization {
        Organization::FilePerProcess => nprocs,
        Organization::Collective => 1,
        Organization::Damaris { clients_per_node } => nprocs.div_ceil(clients_per_node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{CollectiveBackend, DamarisDeployment, FppBackend};
    use crate::solver::{run_rank, Cm1Config};
    use damaris_mpi::World;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("cm1-post-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn all_organizations_reassemble_identically() {
        let nprocs = 4;
        let config = Cm1Config {
            global: (16, 16, 4),
            iterations: 2,
            write_every: 2,
            n_variables: 2,
            physics: Default::default(),
            bubble_amplitude: 5.0,
        };
        let decomp = Decomp2d::auto(nprocs, 16, 16, 4).unwrap();

        let dir_fpp = scratch("fpp");
        World::run(nprocs, |comm| {
            let mut io = FppBackend::new(&dir_fpp).unwrap();
            run_rank(comm, &config, &mut io).unwrap();
        });
        let dir_cio = scratch("cio");
        World::run(nprocs, |comm| {
            let mut io = CollectiveBackend::new(&dir_cio).unwrap();
            run_rank(comm, &config, &mut io).unwrap();
        });
        let dir_dam = scratch("dam");
        let deployment =
            DamarisDeployment::start(nprocs, 2, decomp.local_extent(), 2, &dir_dam).unwrap();
        World::run(nprocs, |comm| {
            let mut io = deployment.backend_for(comm.rank());
            run_rank(comm, &config, &mut io).unwrap();
        });
        deployment.finish().unwrap();

        let a = read_global(&dir_fpp, Organization::FilePerProcess, &decomp, 2, "theta").unwrap();
        let b = read_global(&dir_cio, Organization::Collective, &decomp, 2, "theta").unwrap();
        let c = read_global(
            &dir_dam,
            Organization::Damaris { clients_per_node: 2 },
            &decomp,
            2,
            "theta",
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.len(), 16 * 16 * 4);
        // The bubble is warm in the middle.
        let mid = (8 * 16 + 8) * 4 + 1;
        assert!(a[mid] > 300.5, "center {}", a[mid]);
        for d in [dir_fpp, dir_cio, dir_dam] {
            std::fs::remove_dir_all(&d).ok();
        }
    }

    #[test]
    fn reassembly_is_globally_continuous() {
        // The reassembled field must not have seams at subdomain borders:
        // compare a 1-rank run against a 4-rank run of the same problem.
        let config = Cm1Config {
            global: (16, 16, 4),
            iterations: 2,
            write_every: 2,
            n_variables: 1,
            physics: Default::default(),
            bubble_amplitude: 5.0,
        };
        let dir1 = scratch("serial");
        World::run(1, |comm| {
            let mut io = FppBackend::new(&dir1).unwrap();
            run_rank(comm, &config, &mut io).unwrap();
        });
        let dir4 = scratch("par");
        World::run(4, |comm| {
            let mut io = FppBackend::new(&dir4).unwrap();
            run_rank(comm, &config, &mut io).unwrap();
        });
        let d1 = Decomp2d::auto(1, 16, 16, 4).unwrap();
        let d4 = Decomp2d::auto(4, 16, 16, 4).unwrap();
        let serial = read_global(&dir1, Organization::FilePerProcess, &d1, 2, "theta").unwrap();
        let parallel = read_global(&dir4, Organization::FilePerProcess, &d4, 2, "theta").unwrap();
        assert_eq!(serial, parallel);
        std::fs::remove_dir_all(&dir1).ok();
        std::fs::remove_dir_all(&dir4).ok();
    }

    #[test]
    fn file_counts_match_the_papers_argument() {
        assert_eq!(files_per_iteration(Organization::FilePerProcess, 9216), 9216);
        assert_eq!(files_per_iteration(Organization::Collective, 9216), 1);
        assert_eq!(
            files_per_iteration(Organization::Damaris { clients_per_node: 11 }, 9216),
            838
        );
    }

    #[test]
    fn missing_files_reported_with_path() {
        let decomp = Decomp2d::auto(2, 8, 8, 2).unwrap();
        let err = read_global(
            Path::new("/nonexistent"),
            Organization::FilePerProcess,
            &decomp,
            0,
            "theta",
        )
        .unwrap_err();
        assert!(err.to_string().contains("rank-0"), "{err}");
    }
}
