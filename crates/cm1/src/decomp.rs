//! 2D domain decomposition (paper §IV-A): "Parallelization is done using
//! MPI, by splitting the 3D array along a 2D grid of equally-sized
//! subdomains that are handled by each process."

use crate::grid::Side;

/// A `px × py` process grid over a `gnx × gny × gnz` global domain, with
/// periodic horizontal boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decomp2d {
    pub px: usize,
    pub py: usize,
    pub gnx: usize,
    pub gny: usize,
    pub gnz: usize,
}

impl Decomp2d {
    /// Creates the decomposition; the global extents must divide evenly
    /// (the paper uses equally-sized subdomains).
    pub fn new(px: usize, py: usize, gnx: usize, gny: usize, gnz: usize) -> Result<Self, String> {
        if px == 0 || py == 0 {
            return Err("process grid dimensions must be positive".into());
        }
        if !gnx.is_multiple_of(px) || !gny.is_multiple_of(py) {
            return Err(format!(
                "global domain {gnx}×{gny} does not divide into a {px}×{py} process grid"
            ));
        }
        Ok(Decomp2d {
            px,
            py,
            gnx,
            gny,
            gnz,
        })
    }

    /// Picks a near-square process grid for `nprocs` ranks, constrained to
    /// divide the global extents.
    pub fn auto(nprocs: usize, gnx: usize, gny: usize, gnz: usize) -> Result<Self, String> {
        let mut best: Option<(usize, usize)> = None;
        for px in 1..=nprocs {
            if !nprocs.is_multiple_of(px) {
                continue;
            }
            let py = nprocs / px;
            if !gnx.is_multiple_of(px) || !gny.is_multiple_of(py) {
                continue;
            }
            let badness = px.abs_diff(py);
            if best.is_none_or(|(bx, by)| badness < bx.abs_diff(by)) {
                best = Some((px, py));
            }
        }
        let (px, py) =
            best.ok_or_else(|| format!("no valid process grid for {nprocs} ranks over {gnx}×{gny}"))?;
        Self::new(px, py, gnx, gny, gnz)
    }

    /// Total ranks.
    pub fn nprocs(&self) -> usize {
        self.px * self.py
    }

    /// Rank → (cx, cy) grid coordinates (x-major).
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.nprocs());
        (rank % self.px, rank / self.px)
    }

    /// (cx, cy) → rank.
    pub fn rank_of(&self, cx: usize, cy: usize) -> usize {
        (cy % self.py) * self.px + (cx % self.px)
    }

    /// Local subdomain extents (equal for every rank).
    pub fn local_extent(&self) -> (usize, usize, usize) {
        (self.gnx / self.px, self.gny / self.py, self.gnz)
    }

    /// Global offset of `rank`'s subdomain.
    pub fn local_origin(&self, rank: usize) -> (usize, usize) {
        let (cx, cy) = self.coords(rank);
        let (lnx, lny, _) = self.local_extent();
        (cx * lnx, cy * lny)
    }

    /// Neighbour rank on `side` (periodic wrap).
    pub fn neighbor(&self, rank: usize, side: Side) -> usize {
        let (cx, cy) = self.coords(rank);
        match side {
            Side::West => self.rank_of(cx.wrapping_add(self.px - 1), cy),
            Side::East => self.rank_of(cx + 1, cy),
            Side::South => self.rank_of(cx, cy.wrapping_add(self.py - 1)),
            Side::North => self.rank_of(cx, cy + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn coords_roundtrip() {
        let d = Decomp2d::new(4, 3, 32, 24, 10).unwrap();
        for rank in 0..12 {
            let (cx, cy) = d.coords(rank);
            assert_eq!(d.rank_of(cx, cy), rank);
        }
        assert_eq!(d.local_extent(), (8, 8, 10));
        assert_eq!(d.local_origin(0), (0, 0));
        assert_eq!(d.local_origin(5), (8, 8));
    }

    #[test]
    fn neighbors_are_mutual() {
        let d = Decomp2d::new(3, 3, 9, 9, 2).unwrap();
        for rank in 0..9 {
            for side in Side::ALL {
                let n = d.neighbor(rank, side);
                assert_eq!(
                    d.neighbor(n, side.opposite()),
                    rank,
                    "rank {rank} side {side:?}"
                );
            }
        }
    }

    #[test]
    fn periodic_wrap() {
        let d = Decomp2d::new(3, 2, 9, 8, 2).unwrap();
        assert_eq!(d.neighbor(0, Side::West), 2);
        assert_eq!(d.neighbor(2, Side::East), 0);
        assert_eq!(d.neighbor(0, Side::South), 3);
        assert_eq!(d.neighbor(3, Side::North), 0);
    }

    #[test]
    fn divisibility_enforced() {
        assert!(Decomp2d::new(3, 2, 10, 8, 2).is_err());
        assert!(Decomp2d::new(0, 2, 8, 8, 2).is_err());
    }

    #[test]
    fn auto_prefers_square() {
        let d = Decomp2d::auto(16, 64, 64, 8).unwrap();
        assert_eq!((d.px, d.py), (4, 4));
        let d = Decomp2d::auto(12, 48, 48, 8).unwrap();
        assert!(d.px * d.py == 12 && d.px.abs_diff(d.py) <= 2, "{d:?}");
    }

    #[test]
    fn auto_respects_divisibility() {
        // 6 ranks over 9×8: 3×2 works (9/3, 8/2), 2×3 and 6×1 do not.
        let d = Decomp2d::auto(6, 9, 8, 4).unwrap();
        assert_eq!((d.px, d.py), (3, 2));
        assert!(Decomp2d::auto(7, 9, 8, 4).is_err());
    }

    proptest! {
        #[test]
        fn subdomains_tile_the_domain(px in 1usize..6, py in 1usize..6, mul_x in 1usize..5, mul_y in 1usize..5) {
            let d = Decomp2d::new(px, py, px * mul_x * 2, py * mul_y * 3, 4).unwrap();
            let (lnx, lny, _) = d.local_extent();
            // Every global cell is covered exactly once.
            let mut covered = vec![0u32; d.gnx * d.gny];
            for rank in 0..d.nprocs() {
                let (ox, oy) = d.local_origin(rank);
                for dx in 0..lnx {
                    for dy in 0..lny {
                        covered[(ox + dx) * d.gny + (oy + dy)] += 1;
                    }
                }
            }
            prop_assert!(covered.iter().all(|&c| c == 1));
        }
    }
}
