//! Checkpoint/restart for the mini-CM1 solver.
//!
//! The paper positions Damaris next to node-local checkpointing systems
//! (§V-B cites SCR): periodic defensive output is the other I/O pattern
//! HPC applications burst on. This module gives the proxy application that
//! pattern — each rank snapshots its prognostic state (`theta`, `qv`, `w`)
//! into an SDF file and can resume a run bit-exactly from any checkpoint.

use crate::grid::Field3;
use crate::io::IoError;
use damaris_format::{DataType, DatasetOptions, Layout, SdfReader, SdfWriter};
use std::path::{Path, PathBuf};

/// When and where to write checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory for `ckpt-rank-R-iter-N.sdf` files.
    pub dir: PathBuf,
    /// Checkpoint every this many iterations.
    pub every: u32,
}

impl CheckpointPolicy {
    /// New policy (creates the directory on first write).
    pub fn new(dir: impl AsRef<Path>, every: u32) -> Self {
        CheckpointPolicy {
            dir: dir.as_ref().to_path_buf(),
            every: every.max(1),
        }
    }

    /// Path of one rank's checkpoint at one iteration.
    pub fn file(&self, rank: usize, iteration: u32) -> PathBuf {
        self.dir
            .join(format!("ckpt-rank-{rank}-iter-{iteration:06}.sdf"))
    }
}

/// The prognostic state a restart needs. (`u`, `v` are constant background;
/// `prs`/`dbz`/`tke` are pure functions of `theta` and `w`.)
pub struct ProgState<'a> {
    pub theta: &'a Field3,
    pub qv: &'a Field3,
    pub w: &'a Field3,
}

fn layout_of(f: &Field3) -> Layout {
    Layout::new(
        DataType::F32,
        &[f.nx as u64, f.ny as u64, f.nz as u64],
    )
}

/// Writes one rank's checkpoint. Uses the lossless gzip-analogue filter:
/// checkpoints must restore bit-exactly.
pub fn write_checkpoint(
    policy: &CheckpointPolicy,
    rank: usize,
    iteration: u32,
    state: ProgState<'_>,
) -> Result<(), IoError> {
    std::fs::create_dir_all(&policy.dir).map_err(IoError::msg)?;
    let mut w = SdfWriter::create(policy.file(rank, iteration))?;
    let opts = DatasetOptions::plain()
        .with_filter("lzss|huff")
        .with_attr("iteration", i64::from(iteration))
        .with_attr("rank", rank as i64);
    for (name, field) in [("theta", state.theta), ("qv", state.qv), ("w", state.w)] {
        w.write_dataset_f32_opts(
            &format!("/{name}"),
            &layout_of(field),
            &field.interior(),
            &opts,
        )?;
    }
    w.finish()?;
    Ok(())
}

/// Loads one rank's checkpoint into freshly-shaped fields.
/// Returns `(theta, qv, w)`.
pub fn read_checkpoint(
    policy: &CheckpointPolicy,
    rank: usize,
    iteration: u32,
    extent: (usize, usize, usize),
    halo: usize,
) -> Result<(Field3, Field3, Field3), IoError> {
    let path = policy.file(rank, iteration);
    let reader = SdfReader::open(&path)
        .map_err(|e| IoError(format!("checkpoint {}: {e}", path.display())))?;
    let (nx, ny, nz) = extent;
    let load = |name: &str| -> Result<Field3, IoError> {
        let info = reader
            .info(&format!("/{name}"))
            .ok_or_else(|| IoError(format!("checkpoint missing /{name}")))?;
        if info.layout.dims != vec![nx as u64, ny as u64, nz as u64] {
            return Err(IoError(format!(
                "checkpoint /{name} has shape {:?}, expected {:?}",
                info.layout.dims,
                (nx, ny, nz)
            )));
        }
        if info.attr("iteration").and_then(|a| a.as_i64()) != Some(i64::from(iteration)) {
            return Err(IoError(format!(
                "checkpoint /{name} labeled with a different iteration"
            )));
        }
        let mut field = Field3::new(nx, ny, nz, halo);
        field.set_interior(&reader.read_f32(&format!("/{name}"))?);
        Ok(field)
    };
    Ok((load("theta")?, load("qv")?, load("w")?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("cm1-ckpt-{tag}-{}-{n}", std::process::id()))
    }

    fn bubble(nx: usize, ny: usize, nz: usize, seed: f32) -> Field3 {
        let mut f = Field3::new(nx, ny, nz, 1);
        crate::physics::init_warm_bubble(&mut f, (0, 0), (nx, ny, nz), 300.0 + seed, 4.0);
        f
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_exact() {
        let dir = scratch("roundtrip");
        let policy = CheckpointPolicy::new(&dir, 5);
        let (theta, qv, w) = (bubble(8, 6, 4, 0.0), bubble(8, 6, 4, 1.0), bubble(8, 6, 4, 2.0));
        write_checkpoint(
            &policy,
            3,
            10,
            ProgState {
                theta: &theta,
                qv: &qv,
                w: &w,
            },
        )
        .unwrap();
        let (t2, q2, w2) = read_checkpoint(&policy, 3, 10, (8, 6, 4), 1).unwrap();
        assert_eq!(t2.interior(), theta.interior());
        assert_eq!(q2.interior(), qv.interior());
        assert_eq!(w2.interior(), w.interior());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_shape_or_iteration_rejected() {
        let dir = scratch("mismatch");
        let policy = CheckpointPolicy::new(&dir, 5);
        let f = bubble(8, 6, 4, 0.0);
        write_checkpoint(
            &policy,
            0,
            10,
            ProgState {
                theta: &f,
                qv: &f,
                w: &f,
            },
        )
        .unwrap();
        assert!(read_checkpoint(&policy, 0, 10, (8, 6, 5), 1).is_err());
        assert!(read_checkpoint(&policy, 0, 11, (8, 6, 4), 1).is_err());
        assert!(read_checkpoint(&policy, 1, 10, (8, 6, 4), 1).is_err()); // no such rank
        std::fs::remove_dir_all(&dir).ok();
    }
}
