//! # damaris-cm1
//!
//! A miniature CM1: a proxy for the atmospheric model the paper evaluates
//! with (§IV-A). Like the original, it
//!
//! * simulates a fixed 3D box of atmosphere holding several named
//!   variables per grid point (potential temperature, wind components,
//!   pressure perturbation, moisture),
//! * parallelizes by splitting the domain along a 2D grid of equally-sized
//!   subdomains, one per MPI process, exchanging halos every iteration,
//! * alternates computation phases with periodic write phases that dump
//!   every variable,
//! * supports three interchangeable I/O backends: file-per-process,
//!   collective I/O into one shared file, and Damaris dedicated cores —
//!   the three strategies the paper compares.
//!
//! The physics is a warm-bubble advection–diffusion–buoyancy scheme: not
//! CM1's dynamics, but the same *computational shape* (stencil sweeps over
//! a 3D box between communications), which is all the I/O study needs.
//!
//! ## Example
//!
//! ```
//! use damaris_cm1::{Cm1Config, run_rank, io::FppBackend};
//! use damaris_mpi::World;
//! use std::sync::Arc;
//!
//! let config = Cm1Config::small_test(4); // 2×2 process grid
//! let dir = std::env::temp_dir().join(format!("cm1-doc-{}", std::process::id()));
//! let results = World::run(4, |comm| {
//!     let mut io = FppBackend::new(&dir).unwrap();
//!     run_rank(comm, &config, &mut io).unwrap()
//! });
//! assert!(results.iter().all(|r| r.iterations == config.iterations));
//! std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod checkpoint;
pub mod decomp;
pub mod grid;
pub mod io;
pub mod physics;
pub mod postprocess;
pub mod solver;
pub mod variables;

pub use decomp::Decomp2d;
pub use grid::Field3;
pub use checkpoint::CheckpointPolicy;
pub use solver::{run_rank, run_rank_with, Cm1Config, RankResult};
pub use variables::{variable_names, damaris_config_xml};
