//! The kill matrix, run for real: CM1 as 4+ OS processes over a
//! file-backed shared mapping, with `kill -9` delivered at every
//! interesting protocol phase.
//!
//! Every test drives [`damaris_core::proc::launch`] with the
//! `cm1_proc` binary as the child executable, then asserts the three
//! acceptance properties of the cross-process design:
//!
//! 1. **Containment** — the dead party is fenced (client) or
//!    respawned-and-replayed (EPE) within the lease window.
//! 2. **Zero leaks** — after every process has exited, the mapping's
//!    rings hold 0 reserved bytes.
//! 3. **Output integrity** — persisted SDF files validate, contain
//!    exactly the data the policy promises, and never contain a
//!    CRC-invalid segment.

#![cfg(unix)]

use damaris_core::config::OnClientFailure;
use damaris_core::proc::client::payload_for;
use damaris_core::proc::{ClientKillSpec, LaunchPlan, LaunchReport};
use damaris_format::SdfReader;
use damaris_mpi::ClientKillPhase;
use std::path::{Path, PathBuf};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "damaris-proc-chaos-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn plan(name: &str) -> LaunchPlan {
    LaunchPlan::new(
        PathBuf::from(env!("CARGO_BIN_EXE_cm1_proc")),
        tmpdir(name),
        4,
    )
}

/// Checks every `/rank<r>/var<v>` dataset in `file` against the
/// deterministic payload the client generated — end-to-end: what the
/// client memcpy'd into shared memory is byte-identical to what the EPE
/// persisted, across process boundaries, kills, and respawns.
fn assert_sdf_contents(file: &Path, it: u32, present: &[u32], absent: &[u32], p: &LaunchPlan) {
    let reader = SdfReader::open(file).unwrap();
    reader.validate().unwrap();
    let names = reader.dataset_names();
    for &rank in present {
        for var in 0..p.variables {
            let path = format!("/rank{rank}/var{var}");
            let bytes = reader.read_bytes(&path).unwrap();
            assert_eq!(
                bytes,
                payload_for(rank, it, var, p.payload_len),
                "{path} in {file:?} does not match the client payload"
            );
        }
    }
    for &rank in absent {
        assert!(
            !names.iter().any(|n| n.starts_with(&format!("/rank{rank}/"))),
            "fenced rank {rank} leaked data into {file:?}"
        );
    }
}

fn assert_core_invariants(report: &LaunchReport) {
    assert!(report.epe_ok, "EPE did not finish cleanly: {report:?}");
    assert_eq!(report.leaked_bytes, 0, "ring bytes leaked: {report:?}");
    assert!(
        report.failed_ranks.is_empty(),
        "ranks failed (not killed): {report:?}"
    );
}

#[test]
fn clean_run_four_processes_persist_every_iteration() {
    let p = plan("clean");
    let report = damaris_core::proc::launch(&p).unwrap();

    assert_core_invariants(&report);
    assert_eq!(report.epe_respawns, 0);
    assert!(report.killed_ranks.is_empty());
    assert_eq!(report.total(|r| r.iterations_persisted), 3);
    assert_eq!(report.total(|r| r.partial_iterations), 0);
    assert_eq!(report.sdf_files.len(), 3);
    for (it, file) in report.sdf_files.iter().enumerate() {
        assert_sdf_contents(file, it as u32, &[0, 1, 2, 3], &[], &p);
        // A full iteration carries no presence bitmap.
        let reader = SdfReader::open(file).unwrap();
        assert!(!reader.dataset_names().iter().any(|n| n == "/presence"));
    }
    let _ = std::fs::remove_dir_all(&p.dir);
}

#[test]
fn killed_client_is_fenced_at_every_phase() {
    for phase in [
        ClientKillPhase::Alloc,
        ClientKillPhase::Memcpy,
        ClientKillPhase::PostCommit,
    ] {
        let mut p = plan(&format!("client-kill-{}", ClientKillSpec::phase_str(phase)));
        p.policy = OnClientFailure::Partial;
        p.client_kill = Some(ClientKillSpec {
            rank: 1,
            phase,
            iteration: 1,
        });
        let report = damaris_core::proc::launch(&p).unwrap();

        assert_core_invariants(&report);
        assert_eq!(report.killed_ranks, vec![1], "phase {phase:?}");
        assert!(
            report.total(|r| r.leases_revoked) >= 1,
            "rank 1 was not fenced at phase {phase:?}: {report:?}"
        );
        // Partial policy: every iteration still persists; the ones the
        // victim missed carry a presence bitmap instead of its data.
        assert_eq!(report.total(|r| r.iterations_persisted), 3);
        assert_eq!(report.total(|r| r.partial_iterations), 2);
        assert_eq!(report.total(|r| r.crc_rejected), 0);
        assert_eq!(report.sdf_files.len(), 3);
        assert_sdf_contents(&report.sdf_files[0], 0, &[0, 1, 2, 3], &[], &p);
        for it in [1u32, 2] {
            let file = &report.sdf_files[it as usize];
            assert_sdf_contents(file, it, &[0, 2, 3], &[1], &p);
            let reader = SdfReader::open(file).unwrap();
            let presence = reader.read_bytes("/presence").unwrap();
            assert_eq!(presence, vec![1, 0, 1, 1], "presence bitmap at {it}");
        }
        let _ = std::fs::remove_dir_all(&p.dir);
    }
}

#[test]
fn killed_epe_respawns_replays_the_wal_and_finishes() {
    let mut p = plan("epe-kill");
    // Die right after the 5th commit's pending record is durable —
    // mid-drain, with journalled-but-unapplied state to recover.
    p.epe_kill_after = Some(5);
    let report = damaris_core::proc::launch(&p).unwrap();

    assert_core_invariants(&report);
    assert_eq!(report.epe_respawns, 1);
    assert!(report.killed_ranks.is_empty());
    assert_eq!(report.epe_reports.len(), 2, "one report per incarnation");
    let second = &report.epe_reports[1];
    assert!(
        second.events_replayed >= 1,
        "respawn recovered nothing from the WAL: {report:?}"
    );
    assert!(
        second.stale_commits_rejected >= 1,
        "client re-sends were not deduplicated: {report:?}"
    );
    // No client died, so after recovery nothing may be partial and
    // every byte of every rank must come out intact.
    assert_eq!(report.total(|r| r.iterations_persisted), 3);
    assert_eq!(report.total(|r| r.partial_iterations), 0);
    assert_eq!(report.total(|r| r.crc_rejected), 0);
    assert_eq!(report.sdf_files.len(), 3);
    for (it, file) in report.sdf_files.iter().enumerate() {
        assert_sdf_contents(file, it as u32, &[0, 1, 2, 3], &[], &p);
    }
    let _ = std::fs::remove_dir_all(&p.dir);
}

#[test]
fn drop_iteration_policy_discards_the_whole_iteration() {
    let mut p = plan("drop-iter");
    p.policy = OnClientFailure::DropIteration;
    p.client_kill = Some(ClientKillSpec {
        rank: 2,
        phase: ClientKillPhase::Alloc,
        iteration: 1,
    });
    let report = damaris_core::proc::launch(&p).unwrap();

    assert_core_invariants(&report);
    assert_eq!(report.killed_ranks, vec![2]);
    assert_eq!(report.total(|r| r.iterations_persisted), 1);
    assert_eq!(report.total(|r| r.iterations_dropped), 2);
    // Only the pre-kill iteration reached disk, and it is complete.
    assert_eq!(report.sdf_files.len(), 1);
    assert_sdf_contents(&report.sdf_files[0], 0, &[0, 1, 2, 3], &[], &p);
    let _ = std::fs::remove_dir_all(&p.dir);
}

#[test]
fn wait_policy_never_publishes_partial_data() {
    let mut p = plan("wait");
    p.policy = OnClientFailure::Wait;
    p.client_kill = Some(ClientKillSpec {
        rank: 0,
        phase: ClientKillPhase::PostCommit,
        iteration: 1,
    });
    let report = damaris_core::proc::launch(&p).unwrap();

    assert_core_invariants(&report);
    assert_eq!(report.killed_ranks, vec![0]);
    // `wait` refuses partial output: the affected iterations degrade
    // (nothing published) once the victim's death is proven by fencing.
    assert_eq!(report.total(|r| r.iterations_persisted), 1);
    assert_eq!(report.total(|r| r.partial_iterations), 0);
    assert_eq!(report.total(|r| r.iterations_degraded), 2);
    assert_eq!(report.sdf_files.len(), 1);
    assert_sdf_contents(&report.sdf_files[0], 0, &[0, 1, 2, 3], &[], &p);
    let _ = std::fs::remove_dir_all(&p.dir);
}

#[test]
fn orphaned_mappings_are_swept_and_counted_at_startup() {
    let p = plan("orphan-gc");

    // A leftover mapping from a "previous run" whose creator is dead:
    // a valid header stamped with a pid beyond Linux's pid_max.
    let stale = p.dir.join("damaris-node-stale.shm");
    {
        let node = damaris_shm::MappedNode::create(&stale, 2, 4096).unwrap();
        drop(node);
        let mut bytes = std::fs::read(&stale).unwrap();
        bytes[40..48].copy_from_slice(&(i32::MAX as u64).to_ne_bytes());
        std::fs::write(&stale, bytes).unwrap();
    }
    // And something wearing the prefix that is not a mapping at all.
    let junk = p.dir.join("damaris-node-junk.shm");
    std::fs::write(&junk, vec![0xA5u8; 4096]).unwrap();

    let report = damaris_core::proc::launch(&p).unwrap();

    assert_core_invariants(&report);
    assert_eq!(report.total(|r| r.orphans_removed), 1, "{report:?}");
    assert_eq!(report.total(|r| r.orphans_quarantined), 1, "{report:?}");
    assert!(!stale.exists(), "dead-pid orphan was not unlinked");
    assert!(
        p.dir.join("damaris-node-junk.shm.quarantine").exists(),
        "unrecognizable file was not quarantined"
    );
    // The sweep never touches the run that is starting: output intact.
    assert_eq!(report.total(|r| r.iterations_persisted), 3);
    let _ = std::fs::remove_dir_all(&p.dir);
}
