//! Umbrella crate for the Damaris reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See `README.md` and `DESIGN.md` at the repository root.

pub use damaris_cm1 as cm1;
pub use damaris_compress as compress;
pub use damaris_core as core;
pub use damaris_format as format;
pub use damaris_fs as fs;
pub use damaris_mpi as mpi;
pub use damaris_shm as shm;
pub use damaris_sim as sim;
pub use damaris_xml as xml;
