//! Inline compression in the dedicated core (paper §IV-D): the simulation
//! writes uncompressed data into shared memory; the dedicated core
//! compresses while persisting — the overhead is completely hidden from
//! the compute cores, unlike HDF5's client-side gzip in the
//! file-per-process approach.
//!
//! Run with: `cargo run --release --example inline_compression`

use damaris_repro::core::{Config, NodeRuntime};
use damaris_repro::format::SdfReader;
use std::time::Instant;

const VALUES: usize = 256 * 1024; // 1 MiB per variable
const CLIENTS: usize = 3;
const ITERATIONS: u32 = 4;

fn run(label: &str, filter: Option<&str>) -> Result<(u64, u64, f64), Box<dyn std::error::Error>> {
    let event = match filter {
        Some(spec) => format!(
            r#"<event name="end_of_iteration" action="persist" using="{spec}"/>"#
        ),
        None => String::new(),
    };
    let xml = format!(
        r#"<damaris>
             <buffer size="33554432" allocator="partition"/>
             <layout name="grid" type="real" dimensions="{VALUES}"/>
             <variable name="theta" layout="grid" unit="K"/>
             {event}
           </damaris>"#
    );
    let config = Config::from_xml(&xml)?;
    let dir = std::env::temp_dir().join(format!(
        "damaris-inline-comp-{}-{label}",
        std::process::id()
    ));

    let runtime = NodeRuntime::start(config, CLIENTS, &dir)?;
    let clients = runtime.clients();
    let t0 = Instant::now();
    let mut client_seconds = 0.0;
    std::thread::scope(|s| {
        let handles: Vec<_> = clients
            .into_iter()
            .map(|client| {
                s.spawn(move || {
                    // Warm-bubble-ish data: smooth + noisy low bits.
                    let mut h = 0x517c_c1b7u32 ^ client.id();
                    let mut t = 0.0;
                    for it in 0..ITERATIONS {
                        let data: Vec<f32> = (0..VALUES)
                            .map(|i| {
                                h = h.wrapping_mul(0x0100_0193) ^ h.rotate_left(13);
                                300.0 + ((i + it as usize) as f32 * 0.001).sin() * 4.0
                                    + 1.0e-4 * (h >> 16) as f32
                            })
                            .collect();
                        let w0 = Instant::now();
                        client.write_f32("theta", it, &data).unwrap();
                        client.end_iteration(it).unwrap();
                        t += w0.elapsed().as_secs_f64();
                    }
                    t
                })
            })
            .collect();
        for h in handles {
            client_seconds += h.join().expect("client thread");
        }
    });
    let report = runtime.finish()?;
    let wall = t0.elapsed().as_secs_f64();

    // Verify data integrity through the filter.
    let reader = SdfReader::open(dir.join("node-0/iter-000000.sdf"))?;
    let back = reader.read_f32("/iter-0/rank-0/theta")?;
    assert_eq!(back.len(), VALUES);

    println!(
        "{label:<22} logical {:>6.1} MB  stored {:>6.1} MB  ratio {:>4.0}%  client write {:>6.1} ms/iter  wall {:.2}s",
        report.bytes_received as f64 / 1e6,
        report.bytes_stored as f64 / 1e6,
        100.0 * report.bytes_received as f64 / report.bytes_stored as f64,
        1000.0 * client_seconds / (CLIENTS as f64 * ITERATIONS as f64),
        wall
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok((report.bytes_received, report.bytes_stored, client_seconds))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{CLIENTS} clients × {ITERATIONS} iterations × 1 MiB; compression runs in the dedicated core:\n"
    );
    let _ = run("(warm-up)", None)?;
    let (_, _, t_plain) = run("no compression", None)?;
    let (logical, stored, t_gzip) = run("lzss|huff (gzip-like)", Some("lzss|huff"))?;
    let (_, stored16, t_16) = run("precision16|lzss|huff", Some("precision16|lzss|huff"))?;

    println!(
        "\nstorage saved: {:.0}% (lossless), {:.0}% (16-bit for visualization)",
        100.0 * (1.0 - stored as f64 / logical as f64),
        100.0 * (1.0 - stored16 as f64 / logical as f64),
    );
    let overhead = ((t_gzip.max(t_16) / t_plain) - 1.0) * 100.0;
    if overhead.abs() < 25.0 {
        println!(
            "client-visible cost of enabling compression: within measurement noise \
             ({overhead:+.0}%) — the paper's point: it runs in the dedicated core's spare time"
        );
    } else {
        println!("client-visible cost of enabling compression: {overhead:+.0}%");
    }
    Ok(())
}
