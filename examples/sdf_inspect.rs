//! Inspect any SDF file produced by this workspace: datasets, shapes,
//! filters, attributes, compression ratios, and integrity.
//!
//! ```text
//! cargo run --release --example sdf_inspect -- <file.sdf> [--verify]
//! ```
//!
//! With `--verify`, every dataset is fully read (checksums + filter
//! pipelines exercised) and the total decode throughput is reported.
//! Without arguments, a demo file is generated and inspected.

use damaris_repro::format::{DataType, DatasetOptions, Layout, SdfReader, SdfWriter};
use std::time::Instant;

fn human(bytes: u64) -> String {
    match bytes {
        b if b >= 1 << 30 => format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64),
        b if b >= 1 << 20 => format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64),
        b if b >= 1 << 10 => format!("{:.1} KiB", b as f64 / (1u64 << 10) as f64),
        b => format!("{b} B"),
    }
}

fn demo_file() -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("sdf-inspect-demo-{}.sdf", std::process::id()));
    let mut w = SdfWriter::create(&path).expect("create demo");
    let layout = Layout::new(DataType::F32, &[64, 64]);
    let smooth: Vec<f32> = (0..4096).map(|i| 300.0 + (i as f32 * 0.01).sin()).collect();
    w.write_dataset_f32_opts(
        "/iter-0/rank-0/theta",
        &layout,
        &smooth,
        &DatasetOptions::plain()
            .with_filter("lzss|huff")
            .with_attr("unit", "K")
            .with_attr("iteration", 0i64),
    )
    .expect("write");
    w.write_dataset_f32("/iter-0/rank-0/w", &layout, &vec![0.0; 4096])
        .expect("write");
    w.finish().expect("finish");
    path
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let verify = args.iter().any(|a| a == "--verify");
    let (path, is_demo) = match args.iter().find(|a| !a.starts_with("--")) {
        Some(p) => (std::path::PathBuf::from(p), false),
        None => {
            println!("(no file given — generating a demo file)\n");
            (demo_file(), true)
        }
    };

    let reader = match SdfReader::open(&path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot open {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let file_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "{}: {} datasets, {} on disk",
        path.display(),
        reader.len(),
        human(file_len)
    );

    let mut logical_total = 0u64;
    let mut stored_total = 0u64;
    for name in reader.dataset_names() {
        let info = reader.info(&name).expect("listed dataset");
        logical_total += info.logical_len();
        stored_total += info.stored_len;
        let dims = info
            .layout
            .dims
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join("×");
        let filter = if info.filter.is_empty() {
            "raw".to_string()
        } else {
            format!(
                "{} ({:.0}%)",
                info.filter,
                100.0 * info.logical_len() as f64 / info.stored_len.max(1) as f64
            )
        };
        let attrs = info
            .attrs
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "  {name}  {:?}[{dims}]  logical {}  stored {}  {filter}  {attrs}",
            info.layout.dtype,
            human(info.logical_len()),
            human(info.stored_len),
        );
    }
    println!(
        "totals: logical {}, stored {} ({:.0}% overall ratio)",
        human(logical_total),
        human(stored_total),
        100.0 * logical_total as f64 / stored_total.max(1) as f64
    );

    if verify || is_demo {
        let t0 = Instant::now();
        let mut bytes = 0u64;
        for name in reader.dataset_names() {
            match reader.read_bytes(&name) {
                Ok(data) => bytes += data.len() as u64,
                Err(e) => {
                    eprintln!("VERIFY FAILED at {name}: {e}");
                    std::process::exit(2);
                }
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "verify: all {} datasets decoded OK ({} at {:.0} MB/s)",
            reader.len(),
            human(bytes),
            bytes as f64 / dt.max(1e-9) / 1e6
        );
        match reader.query_section() {
            Ok(Some(section)) => println!(
                "query section: {} sparse entries, {} bloom bits (CRC OK)",
                section.entries.len(),
                section.bloom.n_bits()
            ),
            Ok(None) => println!("query section: absent (pre-read-tier file)"),
            Err(e) => {
                eprintln!("VERIFY FAILED at query section: {e}");
                std::process::exit(2);
            }
        }
    }
    if is_demo {
        std::fs::remove_file(&path).ok();
    }
}
