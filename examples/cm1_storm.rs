//! Mini-CM1 warm-bubble run comparing the three I/O strategies end to end
//! on real threads and a real file system (a temp directory).
//!
//! This is the paper's experimental setup at laptop scale: the same
//! simulation writes through file-per-process, collective-I/O, and Damaris
//! dedicated cores; we report what the *simulation* observed per write
//! phase — the paper's headline is that the Damaris number is a fraction
//! of the others and independent of data size.
//!
//! Run with: `cargo run --release --example cm1_storm`

use damaris_repro::cm1::io::{CollectiveBackend, DamarisBackend, DamarisDeployment, FppBackend};
use damaris_repro::cm1::{run_rank, Cm1Config};
use damaris_repro::mpi::World;
use std::time::Duration;

const RANKS: usize = 8;
const CLIENTS_PER_NODE: usize = 4; // 2 "SMP nodes"

fn report(label: &str, all_stats: Vec<Vec<Duration>>, checksum: f64) {
    let mut per_phase_max = Vec::new();
    let phases = all_stats[0].len();
    for p in 0..phases {
        let max = all_stats.iter().map(|s| s[p]).max().expect("ranks");
        per_phase_max.push(max);
    }
    let total: Duration = per_phase_max.iter().sum();
    println!(
        "{label:<18} write phases: {:?}  total {total:?}  (theta checksum {checksum:.3})",
        per_phase_max
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = Cm1Config::small_test(RANKS);
    config.global = (96, 96, 40);
    config.iterations = 6;
    config.write_every = 2;
    config.n_variables = 6;
    let tmp = std::env::temp_dir().join(format!("cm1-storm-{}", std::process::id()));
    println!(
        "mini-CM1: {}x{}x{} global domain, {} ranks, {} variables, write every {} iterations\n",
        config.global.0, config.global.1, config.global.2,
        RANKS, config.n_variables, config.write_every
    );

    // --- file-per-process
    let dir = tmp.join("fpp");
    let cfg = config.clone();
    let results = World::run(RANKS, |comm| {
        let mut io = FppBackend::new(&dir).unwrap();
        run_rank(comm, &cfg, &mut io).unwrap()
    });
    report(
        "file-per-process",
        results.iter().map(|r| r.write_stats.iter().map(|s| s.elapsed).collect()).collect(),
        results[0].theta_checksum,
    );

    // --- collective I/O
    let dir = tmp.join("cio");
    let cfg = config.clone();
    let results = World::run(RANKS, |comm| {
        let mut io = CollectiveBackend::new(&dir).unwrap();
        run_rank(comm, &cfg, &mut io).unwrap()
    });
    report(
        "collective-io",
        results.iter().map(|r| r.write_stats.iter().map(|s| s.elapsed).collect()).collect(),
        results[0].theta_checksum,
    );

    // --- Damaris: 2 nodes × (4 clients + 1 dedicated core)
    let dir = tmp.join("damaris");
    let decomp = damaris_repro::cm1::Decomp2d::auto(
        RANKS,
        config.global.0,
        config.global.1,
        config.global.2,
    )?;
    let deployment = DamarisDeployment::start(
        RANKS,
        CLIENTS_PER_NODE,
        decomp.local_extent(),
        config.n_variables,
        &dir,
    )?;
    let cfg = config.clone();
    let results = World::run(RANKS, |comm| {
        let mut io: DamarisBackend = deployment.backend_for(comm.rank());
        run_rank(comm, &cfg, &mut io).unwrap()
    });
    let checksum = results[0].theta_checksum;
    let stats = results
        .iter()
        .map(|r| r.write_stats.iter().map(|s| s.elapsed).collect())
        .collect();
    let reports = deployment.finish()?;
    report("damaris", stats, checksum);
    let stored: u64 = reports.iter().map(|r| r.bytes_stored).sum();
    println!(
        "                   dedicated cores persisted {} iterations/node, {} MB total",
        reports[0].iterations_persisted,
        stored / 1_000_000
    );

    println!(
        "\nNote: identical theta checksums across backends — the I/O strategy must not\n\
         perturb the physics. Damaris write-phase times are shared-memory copies; the\n\
         real storage I/O happened asynchronously on the dedicated cores."
    );
    std::fs::remove_dir_all(&tmp).ok();
    Ok(())
}
