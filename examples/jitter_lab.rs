//! Jitter lab: drive the cluster simulator from the command line and
//! compare the three I/O strategies on any platform/scale — a miniature
//! version of the paper's Figures 2–6 in one command.
//!
//! ```text
//! cargo run --release --example jitter_lab [kraken|grid5000|blueprint] [ncores]
//! ```

use damaris_repro::sim::experiment::{baseline_compute_time, run_simulation, scalability_of_run};
use damaris_repro::sim::{platform, run_io_phase, Strategy, WorkloadSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let platform_name = args.get(1).map(String::as_str).unwrap_or("kraken");
    let (platform, workload, default_cores) = match platform_name {
        "kraken" => (platform::kraken(), WorkloadSpec::cm1_kraken(), 2304),
        "grid5000" => (
            platform::grid5000_parapluie(),
            WorkloadSpec::cm1_grid5000(),
            672,
        ),
        "blueprint" => (
            platform::blueprint(),
            WorkloadSpec::cm1_blueprint(64.0),
            1024,
        ),
        other => {
            eprintln!("unknown platform '{other}' (use kraken|grid5000|blueprint)");
            std::process::exit(2);
        }
    };
    let ncores: usize = args
        .get(2)
        .map(|s| s.parse().expect("ncores must be an integer"))
        .unwrap_or(default_cores);

    println!(
        "platform {} — {} cores ({} nodes × {} cores), {} data servers ({}), \
         {:.1} MB per process per write phase\n",
        platform.name,
        ncores,
        platform.nodes_for(ncores),
        platform.cores_per_node,
        platform.fs.data_servers,
        platform.fs.name,
        workload.bytes_per_core() as f64 / 1e6
    );

    let baseline = baseline_compute_time(&platform, &workload, ncores, 50, 1);
    println!("{:<18} {:>10} {:>10} {:>10} {:>12} {:>8}", "strategy", "phase avg", "phase max", "run time", "throughput", "S/N");
    for strategy in [
        Strategy::FilePerProcess,
        Strategy::CollectiveIo,
        Strategy::damaris(),
    ] {
        // A few independent write phases for avg/max…
        let mut avg = 0.0;
        let mut max: f64 = 0.0;
        let mut thr = 0.0;
        let phases = 5;
        for seed in 0..phases {
            let r = run_io_phase(&platform, &workload, strategy.clone(), ncores, 42 + seed);
            avg += r.phase_duration / phases as f64;
            max = max.max(r.phase_duration);
            thr += r.aggregate_throughput / phases as f64;
        }
        // …and one full 50-iteration run for the scalability factor.
        let run = run_simulation(&platform, &workload, strategy.clone(), ncores, 50, 42);
        let s = scalability_of_run(&run, baseline);
        println!(
            "{:<18} {:>9.2}s {:>9.2}s {:>9.1}s {:>9.2} GB/s {:>7.0}%",
            strategy.label(),
            avg,
            max,
            run.total_time,
            thr / 1e9,
            100.0 * s / ncores as f64,
        );
    }
    println!(
        "\n(phase = what the simulation observes between the barriers of one write phase;\n\
         S/N = scalability factor relative to perfect scaling on this core count)"
    );
}
