//! Quickstart: the minimal Damaris session from the paper's §III-D,
//! translated from its Fortran example.
//!
//! One SMP "node" with 3 compute clients and 1 dedicated core; each client
//! writes a 3D variable and signals a user event; the dedicated core
//! persists everything into one SDF file per iteration and runs a stats
//! action in response to the event.
//!
//! Run with: `cargo run --example quickstart`

use damaris_repro::core::{Config, NodeRuntime};
use damaris_repro::format::SdfReader;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's configuration file (§III-D), extended with an explicit
    // buffer element and a stats action bound to "my_event".
    let xml = r#"
        <damaris>
          <buffer size="16777216" allocator="partition" queue="256"/>
          <layout name="my_layout" type="real" dimensions="64,16,2" language="fortran"/>
          <variable name="my_variable" layout="my_layout" unit="K"/>
          <event name="my_event" action="stats" scope="local"/>
        </damaris>"#;
    let config = Config::from_xml(xml)?;

    let out_dir = std::env::temp_dir().join(format!("damaris-quickstart-{}", std::process::id()));
    println!("output directory: {}", out_dir.display());

    // df_initialize: start the node (3 clients + 1 dedicated core).
    let runtime = NodeRuntime::start(config, 3, &out_dir)?;
    let clients = runtime.clients();

    // Each "compute core" runs on its own thread.
    std::thread::scope(|s| {
        for client in clients {
            s.spawn(move || {
                for step in 0..2u32 {
                    // A 64×16×2 Fortran 'real' array (my_data in the paper).
                    let my_data: Vec<f32> = (0..64 * 16 * 2)
                        .map(|i| 300.0 + client.id() as f32 + i as f32 * 1e-3)
                        .collect();
                    // call df_write("my_variable", step, my_data)
                    client.write_f32("my_variable", step, &my_data).unwrap();
                    // call df_signal("my_event", step)
                    client.signal("my_event", step).unwrap();
                    client.end_iteration(step).unwrap();
                }
            });
        }
    });

    // df_finalize: drain the dedicated core and collect its accounting.
    let report = runtime.finish()?;
    println!(
        "dedicated core persisted {} iterations, {} variables, {} bytes -> {} files",
        report.iterations_persisted,
        report.variables_received,
        report.bytes_received,
        report.files_created
    );

    // The dedicated core gathered all 3 clients into ONE file per step.
    let reader = SdfReader::open(out_dir.join("node-0/iter-000000.sdf"))?;
    println!("iter-0 file holds {} datasets:", reader.len());
    for name in reader.dataset_names() {
        let info = reader.info(&name).expect("listed");
        println!(
            "  {name}  {:?} {:?}  unit={}",
            info.layout.dtype,
            info.layout.dims,
            info.attr("unit").and_then(|a| a.as_str()).unwrap_or("?"),
        );
    }
    // And the stats action produced min/max/mean per variable.
    let stats = SdfReader::open(out_dir.join("node-0/stats-iter-000000.sdf"))?;
    for name in stats.dataset_names() {
        let row = stats.read_f64(&name)?;
        println!("  {name}: min={:.2} max={:.2} mean={:.2}", row[0], row[1], row[2]);
    }

    std::fs::remove_dir_all(&out_dir).ok();
    Ok(())
}
