//! Multiple dedicated cores per node (paper §V-A) and inline visualization
//! (§VI): the symmetric and asymmetric interaction semantics, plus the
//! `visualize` action rendering max-intensity projections in the dedicated
//! core while the simulation runs.
//!
//! Run with: `cargo run --release --example smp_topologies`

use damaris_repro::core::{Config, NodeRuntime, SmpNode, Topology};
use damaris_repro::format::SdfReader;

const NX: usize = 32;
const NY: usize = 32;
const NZ: usize = 16;

fn config(extra_events: &str) -> Config {
    Config::from_xml(&format!(
        r#"<damaris>
             <buffer size="33554432" allocator="partition"/>
             <layout name="grid" type="real" dimensions="{NZ},{NY},{NX}"/>
             <variable name="theta" layout="grid" unit="K"/>
             {extra_events}
           </damaris>"#
    ))
    .expect("valid config")
}

/// A little storm: warm column in the middle of the box.
fn field(client: u32, iteration: u32) -> Vec<f32> {
    let mut out = Vec::with_capacity(NX * NY * NZ);
    for z in 0..NZ {
        for y in 0..NY {
            for x in 0..NX {
                let dx = x as f32 - NX as f32 / 2.0;
                let dy = y as f32 - NY as f32 / 2.0 + client as f32 * 3.0;
                let r2 = dx * dx + dy * dy;
                let bump = 8.0 * (-r2 / (30.0 + iteration as f32 * 10.0)).exp();
                out.push(300.0 + bump * (1.0 - z as f32 / NZ as f32));
            }
        }
    }
    out
}

fn drive(clients: Vec<damaris_repro::core::DamarisClient>, iterations: u32) {
    std::thread::scope(|s| {
        for client in clients {
            s.spawn(move || {
                for it in 0..iterations {
                    client.write_f32("theta", it, &field(client.id(), it)).unwrap();
                    client.end_iteration(it).unwrap();
                }
            });
        }
    });
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tmp = std::env::temp_dir().join(format!("damaris-smp-{}", std::process::id()));

    // --- Symmetric: 2 dedicated cores, each serving 3 of 6 clients.
    let dir = tmp.join("symmetric");
    let node = SmpNode::start(config(""), 6, Topology::Symmetric { dedicated: 2 }, &dir)?;
    drive(node.clients(), 2);
    let report = node.finish()?;
    println!("symmetric: {} dedicated cores, each persisted {} iterations of 3 clients",
        report.io.len(), report.io[0].iterations_persisted);
    for (g, r) in report.io.iter().enumerate() {
        println!("  group {g}: {} variables, {} bytes -> {} files",
            r.variables_received, r.bytes_received, r.files_created);
    }

    // --- Asymmetric: 1 I/O core + 1 analysis core.
    let dir = tmp.join("asymmetric");
    let node = SmpNode::start(config(""), 4, Topology::Asymmetric, &dir)?;
    drive(node.clients(), 3);
    let report = node.finish()?;
    let analysis = report.analysis.expect("asymmetric topology");
    println!("\nasymmetric: I/O core persisted {} iterations; analysis core summarized {} datasets off the I/O path",
        report.io[0].iterations_persisted, analysis.datasets_analyzed);
    let stats = SdfReader::open(dir.join("analysis/analysis-iter-000000.sdf"))?;
    for name in stats.dataset_names().iter().take(2) {
        let row = stats.read_f64(name)?;
        println!("  {name}: min={:.2} max={:.2} mean={:.2}", row[0], row[1], row[2]);
    }

    // --- Inline visualization: the `visualize` action renders previews in
    // the dedicated core at each end of iteration, before persistence.
    let dir = tmp.join("visual");
    let cfg = config(
        r#"<event name="end_of_iteration" action="visualize"/>
           <event name="end_of_iteration" action="persist"/>"#,
    );
    let runtime = NodeRuntime::start(cfg, 2, &dir)?;
    drive(runtime.clients(), 2);
    let report = runtime.finish()?;
    println!("\nvisualization: persisted {} iterations and rendered previews:",
        report.iterations_persisted);
    let mut pgms: Vec<_> = walk(&dir, "pgm");
    pgms.sort();
    for p in &pgms {
        println!("  {}", p.display());
    }
    let preview = SdfReader::open(dir.join("node-0/preview-iter-000000.sdf"))?;
    let img = preview.read_bytes("/iter-0/rank-0-theta")?;
    println!(
        "  preview dataset /iter-0/rank-0-theta: {}x{} 8-bit, brightest pixel {}",
        NY, NX, img.iter().max().unwrap()
    );

    std::fs::remove_dir_all(&tmp).ok();
    Ok(())
}

fn walk(dir: &std::path::Path, ext: &str) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if let Ok(entries) = std::fs::read_dir(&d) {
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|e| e == ext) {
                    out.push(p);
                }
            }
        }
    }
    out
}
