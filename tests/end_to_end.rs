//! Cross-crate integration tests: the full stack wired together —
//! mini-CM1 over mini-MPI, Damaris middleware over shared memory, the SDF
//! format over a real directory — plus cross-backend equivalence and
//! simulator/analysis consistency.

use damaris_repro::cm1::io::{CollectiveBackend, DamarisDeployment, FppBackend};
use damaris_repro::cm1::{run_rank, Cm1Config, Decomp2d};
use damaris_repro::format::SdfReader;
use damaris_repro::mpi::World;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("damaris-e2e-{tag}-{}-{n}", std::process::id()))
}

/// Reads every dataset of an iteration back from whatever file organization
/// a backend produced, normalized to (rank, variable) → data.
fn collect_iteration(
    dir: &std::path::Path,
    organization: &str,
    iteration: u32,
    nprocs: usize,
    variables: &[&str],
) -> Vec<((usize, String), Vec<f32>)> {
    let mut out = Vec::new();
    for rank in 0..nprocs {
        for var in variables {
            let path = format!("/iter-{iteration}/rank-{rank}/{var}");
            let file = match organization {
                "fpp" => dir.join(format!("rank-{rank}/iter-{iteration:06}.sdf")),
                "cio" => dir.join(format!("iter-{iteration:06}.sdf")),
                // Damaris: node files; with 2 clients per node, rank r maps
                // to node r/2, local source r%2.
                "damaris2" => dir.join(format!("node-{}/iter-{iteration:06}.sdf", rank / 2)),
                other => panic!("unknown organization {other}"),
            };
            let reader = SdfReader::open(&file)
                .unwrap_or_else(|e| panic!("open {}: {e}", file.display()));
            let data = match organization {
                "damaris2" => reader
                    .read_f32(&format!("/iter-{iteration}/rank-{}/{var}", rank % 2))
                    .unwrap(),
                _ => reader.read_f32(&path).unwrap(),
            };
            out.push(((rank, var.to_string()), data));
        }
    }
    out
}

#[test]
fn all_three_backends_persist_identical_data() {
    // The paper's apples-to-apples requirement: same simulation, three I/O
    // stacks, bit-identical persisted datasets.
    let config = Cm1Config {
        global: (32, 32, 8),
        iterations: 4,
        write_every: 2,
        n_variables: 4,
        physics: Default::default(),
        bubble_amplitude: 5.0,
    };
    let nprocs = 4;
    let variables = ["theta", "u", "v", "w"];

    let dir_fpp = scratch("fpp");
    World::run(nprocs, |comm| {
        let mut io = FppBackend::new(&dir_fpp).unwrap();
        run_rank(comm, &config, &mut io).unwrap();
    });

    let dir_cio = scratch("cio");
    World::run(nprocs, |comm| {
        let mut io = CollectiveBackend::new(&dir_cio).unwrap();
        run_rank(comm, &config, &mut io).unwrap();
    });

    let dir_dam = scratch("dam");
    let decomp = Decomp2d::auto(nprocs, 32, 32, 8).unwrap();
    let deployment =
        DamarisDeployment::start(nprocs, 2, decomp.local_extent(), 4, &dir_dam).unwrap();
    World::run(nprocs, |comm| {
        let mut io = deployment.backend_for(comm.rank());
        run_rank(comm, &config, &mut io).unwrap();
    });
    deployment.finish().unwrap();

    for iteration in [2u32, 4] {
        let fpp = collect_iteration(&dir_fpp, "fpp", iteration, nprocs, &variables);
        let cio = collect_iteration(&dir_cio, "cio", iteration, nprocs, &variables);
        let dam = collect_iteration(&dir_dam, "damaris2", iteration, nprocs, &variables);
        assert_eq!(fpp, cio, "iteration {iteration}: fpp vs collective");
        assert_eq!(fpp, dam, "iteration {iteration}: fpp vs damaris");
    }
    for d in [dir_fpp, dir_cio, dir_dam] {
        std::fs::remove_dir_all(&d).ok();
    }
}

#[test]
fn damaris_compressed_run_roundtrips() {
    // Full stack with a lossless filter in the dedicated core: data must
    // come back bit-identical after compression + storage + decompression.
    use damaris_repro::core::{Config, NodeRuntime};

    let xml = r#"
        <damaris>
          <buffer size="8388608" allocator="partition"/>
          <layout name="grid" type="real" dimensions="32,32,8"/>
          <variable name="theta" layout="grid"/>
          <event name="end_of_iteration" action="persist" using="lzss|huff"/>
        </damaris>"#;
    let dir = scratch("compressed");
    let runtime = NodeRuntime::start(Config::from_xml(xml).unwrap(), 2, &dir).unwrap();
    let clients = runtime.clients();
    let mut expected = Vec::new();
    for client in &clients {
        let data: Vec<f32> = (0..32 * 32 * 8)
            .map(|i| 300.0 + (client.id() as f32) + (i as f32 * 0.01).sin())
            .collect();
        client.write_f32("theta", 0, &data).unwrap();
        client.end_iteration(0).unwrap();
        expected.push(data);
    }
    let report = runtime.finish().unwrap();
    assert!(report.bytes_stored < report.bytes_received);

    let reader = SdfReader::open(dir.join("node-0/iter-000000.sdf")).unwrap();
    for (id, data) in expected.iter().enumerate() {
        assert_eq!(
            &reader.read_f32(&format!("/iter-0/rank-{id}/theta")).unwrap(),
            data
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulator_reproduces_paper_ordering() {
    // The coarse shape every figure relies on, checked end to end through
    // the public API: damaris ≪ fpp < collective on Lustre at scale.
    use damaris_repro::sim::{platform, run_io_phase, Strategy, WorkloadSpec};
    let p = platform::kraken();
    let w = WorkloadSpec::cm1_kraken();
    let fpp = run_io_phase(&p, &w, Strategy::FilePerProcess, 2304, 1).phase_duration;
    let cio = run_io_phase(&p, &w, Strategy::CollectiveIo, 2304, 1).phase_duration;
    let dam = run_io_phase(&p, &w, Strategy::damaris(), 2304, 1).phase_duration;
    assert!(dam < 1.0, "damaris client phase {dam}");
    assert!(fpp > 10.0 * dam, "fpp {fpp} vs damaris {dam}");
    assert!(cio > fpp, "collective {cio} vs fpp {fpp}");
}

#[test]
fn xml_config_drives_the_whole_stack() {
    // Generated XML → parsed config → running node: the paper's workflow
    // where the configuration file defines the middleware's behaviour.
    use damaris_repro::cm1::damaris_config_xml;
    use damaris_repro::core::{Config, NodeRuntime};

    let xml = damaris_config_xml(8, 8, 4, 3, 1 << 20, "mutex");
    let config = Config::from_xml(&xml).unwrap();
    let dir = scratch("xmlstack");
    let runtime = NodeRuntime::start(config, 1, &dir).unwrap();
    let client = &runtime.clients()[0];
    for var in ["theta", "u", "v"] {
        client.write_f32(var, 0, &vec![1.5; 8 * 8 * 4]).unwrap();
    }
    client.end_iteration(0).unwrap();
    let report = runtime.finish().unwrap();
    assert_eq!(report.variables_received, 3);
    assert_eq!(report.iterations_persisted, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analysis_consistent_with_simulation() {
    // §V-A's qualitative claim checked against the simulator: dedicating a
    // core wins whenever the standard approach pays a nontrivial I/O share.
    use damaris_repro::sim::experiment::run_simulation;
    use damaris_repro::sim::{platform, Strategy, WorkloadSpec};
    let p = platform::kraken();
    let w = WorkloadSpec::cm1_kraken();
    let fpp = run_simulation(&p, &w, Strategy::FilePerProcess, 2304, 50, 3);
    let dam = run_simulation(&p, &w, Strategy::damaris(), 2304, 50, 3);
    let io_share = fpp.io_time / fpp.compute_time;
    assert!(io_share > 0.05, "io share {io_share}");
    assert!(
        dam.total_time < fpp.total_time,
        "damaris {} vs fpp {}",
        dam.total_time,
        fpp.total_time
    );
}
