//! Rank-failure acceptance: when fault injection kills a rank at
//! iteration K, the surviving ranks observe a typed
//! [`RecvError::PeerFailed`] within the configured detection window —
//! they do not hang — and the failure's blast radius differs by I/O
//! strategy exactly as the Damaris paper's jitter analysis predicts:
//! file-per-process writers keep writing, collective writers stall.

use damaris_core::DamarisError;
use damaris_format::{DataType, DatasetOptions, Layout, SdfWriter};
use damaris_mpi::{Bytes, FaultPlan, RecvError, World};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const RANKS: usize = 4;
const KILLED: usize = 2;
const KILL_AT: u32 = 3;
const ITERATIONS: u32 = 6;
const DETECTION_WINDOW: Duration = Duration::from_millis(500);

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "damaris-rankfail-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[derive(Debug, PartialEq)]
enum Outcome {
    /// The injected victim returned early at its fail point.
    Died { at: u32 },
    /// A survivor saw a typed peer failure at this iteration.
    PeerFailed { at: u32, peer: usize, waited: Duration },
    /// The rank completed every iteration without incident.
    Completed,
}

/// The compute-loop skeleton every variant shares: halo-exchange stand-in
/// (an allreduce) each iteration, with the fail point polled first.
fn run_iterations(
    comm: &damaris_mpi::Communicator,
    mut io_phase: impl FnMut(u32) -> Result<(), RecvError>,
) -> Outcome {
    comm.set_recv_timeout(DETECTION_WINDOW);
    for iter in 0..ITERATIONS {
        if comm.fail_point(iter) {
            return Outcome::Died { at: iter };
        }
        let t0 = Instant::now();
        let halo =
            comm.try_allreduce_f64(&[f64::from(iter) + comm.rank() as f64 + 1.0], |a, b| a + b);
        let halo = match halo {
            Ok(v) => v,
            Err(RecvError::PeerFailed { rank }) => {
                return Outcome::PeerFailed {
                    at: iter,
                    peer: rank,
                    waited: t0.elapsed(),
                }
            }
            Err(RecvError::Timeout) => panic!("timeout before peer-death detection"),
        };
        assert!(halo[0] > 0.0);
        match io_phase(iter) {
            Ok(()) => {}
            Err(RecvError::PeerFailed { rank }) => {
                return Outcome::PeerFailed {
                    at: iter,
                    peer: rank,
                    waited: t0.elapsed(),
                }
            }
            Err(RecvError::Timeout) => panic!("timeout in I/O phase before detection"),
        }
    }
    Outcome::Completed
}

/// Survivors of a killed rank get `PeerFailed { rank }` — not a hang, not
/// a bare timeout — within the detection window, and the typed error maps
/// into [`DamarisError::PeerFailed`] for the layers above the substrate.
#[test]
fn killed_rank_surfaces_as_typed_peer_failure_within_window() {
    let plan = FaultPlan::new().kill_rank(KILLED, KILL_AT);
    let outcomes = World::run_with_faults(RANKS, plan, |comm| {
        run_iterations(comm, |_| Ok(()))
    });

    assert_eq!(outcomes[KILLED], Outcome::Died { at: KILL_AT });
    for (rank, outcome) in outcomes.iter().enumerate() {
        if rank == KILLED {
            continue;
        }
        match outcome {
            Outcome::PeerFailed { at, peer, waited } => {
                assert_eq!(*peer, KILLED, "rank {rank} blamed the wrong peer");
                // Detection happens at the kill iteration: the victim never
                // contributes to that allreduce.
                assert_eq!(*at, KILL_AT);
                // …and within the detection window (plus scheduling slack),
                // not after an unbounded stall.
                assert!(
                    *waited < DETECTION_WINDOW + Duration::from_millis(500),
                    "rank {rank} waited {waited:?}"
                );
            }
            other => panic!("rank {rank}: expected PeerFailed, got {other:?}"),
        }
    }

    // The substrate error converts losslessly into the core error type.
    let err: DamarisError = RecvError::PeerFailed { rank: KILLED }.into();
    assert!(matches!(err, DamarisError::PeerFailed { rank } if rank == KILLED));
    let err: DamarisError = RecvError::Timeout.into();
    assert!(matches!(err, DamarisError::CollectiveTimeout));
}

/// File-per-process: I/O is embarrassingly independent, so the survivors'
/// *writes* are untouched by the dead rank — every survivor persists every
/// iteration it reaches, and the failure only surfaces through the
/// compute-phase collective.
#[test]
fn file_per_process_survivors_keep_writing_after_kill() {
    let dir = scratch("fpp");
    let dir_ref = &dir;
    let plan = FaultPlan::new().kill_rank(KILLED, KILL_AT);
    let outcomes = World::run_with_faults(RANKS, plan, |comm| {
        let rank = comm.rank();
        run_iterations(comm, |iter| {
            let path = dir_ref.join(format!("rank-{rank}-iter-{iter:02}.sdf"));
            let mut writer = SdfWriter::create(&path).unwrap();
            writer
                .write_dataset_f32(
                    &format!("/iter-{iter}/rank-{rank}/u"),
                    &Layout::new(DataType::F32, &[16]),
                    &[rank as f32; 16],
                )
                .unwrap();
            writer.finish().unwrap();
            Ok(())
        })
    });

    // Every rank that reached an iteration wrote its file for it: the dead
    // rank through iteration K-1, the survivors through the iteration where
    // the collective exposed the death. No survivor write was *blocked* by
    // the dead peer — the hallmark of the file-per-process strategy.
    assert_eq!(outcomes[KILLED], Outcome::Died { at: KILL_AT });
    for iter in 0..KILL_AT {
        for rank in 0..RANKS {
            assert!(
                dir.join(format!("rank-{rank}-iter-{iter:02}.sdf")).exists(),
                "missing rank {rank} iter {iter}"
            );
        }
    }
    for rank in (0..RANKS).filter(|r| *r != KILLED) {
        assert!(matches!(
            outcomes[rank],
            Outcome::PeerFailed { peer: KILLED, .. }
        ));
    }
    // The victim wrote nothing at or after its kill iteration.
    for iter in KILL_AT..ITERATIONS {
        assert!(!dir
            .join(format!("rank-{KILLED}-iter-{iter:02}.sdf"))
            .exists());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Collective I/O: the aggregation step needs *every* rank, so the same
/// kill stops the shared file stream at iteration K — survivors detect the
/// death inside the gather itself (typed, within the window), and no
/// aggregate file exists for K or beyond.
#[test]
fn collective_io_halts_aggregation_at_kill_iteration() {
    let dir = scratch("collective");
    let dir_ref = &dir;
    let plan = FaultPlan::new().kill_rank(KILLED, KILL_AT);
    let outcomes = World::run_with_faults(RANKS, plan, |comm| {
        let rank = comm.rank();
        run_iterations(comm, |iter| {
            // Two-phase collective write: gather everyone's block to rank
            // 0, which persists one shared file per iteration.
            let block = Bytes::from(vec![rank as u8; 8]);
            let gathered = comm.try_gather(0, block)?;
            if let Some(blocks) = gathered {
                let path = dir_ref.join(format!("shared-iter-{iter:02}.sdf"));
                let mut writer = SdfWriter::create(&path).unwrap();
                for (src, b) in blocks.iter().enumerate() {
                    writer
                        .write_dataset_bytes(
                            &format!("/iter-{iter}/rank-{src}/u"),
                            &Layout::new(DataType::U8, &[b.len() as u64]),
                            b,
                            &DatasetOptions::plain(),
                        )
                        .unwrap();
                }
                writer.finish().unwrap();
            }
            // Everyone leaves the write phase together — so non-root
            // survivors also learn about the death *in the I/O phase*
            // when the kill lands there, not one iteration later.
            comm.try_barrier()?;
            Ok(())
        })
    });

    assert_eq!(outcomes[KILLED], Outcome::Died { at: KILL_AT });
    for rank in (0..RANKS).filter(|r| *r != KILLED) {
        match &outcomes[rank] {
            Outcome::PeerFailed { at, peer, .. } => {
                assert_eq!((*at, *peer), (KILL_AT, KILLED), "rank {rank}");
            }
            other => panic!("rank {rank}: expected PeerFailed, got {other:?}"),
        }
    }
    // Aggregate files exist exactly up to the kill iteration…
    for iter in 0..KILL_AT {
        assert!(dir.join(format!("shared-iter-{iter:02}.sdf")).exists());
    }
    // …and never after: the strategy's write path is all-or-nothing.
    for iter in KILL_AT..ITERATIONS {
        assert!(!dir.join(format!("shared-iter-{iter:02}.sdf")).exists());
    }
    std::fs::remove_dir_all(&dir).ok();
}
