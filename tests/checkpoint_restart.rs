//! Checkpoint/restart equivalence: a run interrupted at iteration K and
//! resumed from its checkpoint must produce *bit-identical* physics and
//! output to an uninterrupted run — across multiple ranks and together
//! with a Damaris I/O backend.

use damaris_repro::cm1::io::{FppBackend, NullBackend};
use damaris_repro::cm1::{run_rank, run_rank_with, CheckpointPolicy, Cm1Config};
use damaris_repro::format::SdfReader;
use damaris_repro::mpi::World;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("damaris-ckpt-{tag}-{}-{n}", std::process::id()))
}

fn config() -> Cm1Config {
    Cm1Config {
        global: (24, 24, 6),
        iterations: 8,
        write_every: 4,
        n_variables: 4,
        physics: Default::default(),
        bubble_amplitude: 5.0,
    }
}

#[test]
fn restart_reproduces_uninterrupted_run() {
    let nprocs = 4;
    let config = config();

    // Uninterrupted reference run.
    let reference = World::run(nprocs, |comm| {
        let mut io = NullBackend;
        run_rank(comm, &config, &mut io).unwrap().theta_checksum
    });

    // Interrupted run: checkpoint every 4 iterations, stop after 4.
    let ckpt_dir = scratch("interrupt");
    let policy = CheckpointPolicy::new(&ckpt_dir, 4);
    let mut first_half = config.clone();
    first_half.iterations = 4;
    World::run(nprocs, |comm| {
        let mut io = NullBackend;
        run_rank_with(comm, &first_half, &mut io, Some(&policy), None).unwrap();
    });
    // Every rank left a checkpoint at iteration 4.
    for rank in 0..nprocs {
        assert!(policy.file(rank, 4).exists(), "rank {rank} checkpoint");
    }

    // Resume from iteration 4 and run to 8.
    let resumed = World::run(nprocs, |comm| {
        let mut io = NullBackend;
        run_rank_with(comm, &config, &mut io, Some(&policy), Some(4))
            .unwrap()
            .theta_checksum
    });
    assert_eq!(reference[0], resumed[0], "restart must be bit-exact");
    std::fs::remove_dir_all(&ckpt_dir).ok();
}

#[test]
fn restart_writes_identical_output_files() {
    // The second half's write phases after a restart must persist the same
    // bytes an uninterrupted run persists.
    let nprocs = 2;
    let config = config();

    let dir_ref = scratch("out-ref");
    World::run(nprocs, |comm| {
        let mut io = FppBackend::new(&dir_ref).unwrap();
        run_rank(comm, &config, &mut io).unwrap();
    });

    let ckpt_dir = scratch("out-ckpt");
    let policy = CheckpointPolicy::new(&ckpt_dir, 4);
    let mut first_half = config.clone();
    first_half.iterations = 4;
    World::run(nprocs, |comm| {
        let mut io = NullBackend;
        run_rank_with(comm, &first_half, &mut io, Some(&policy), None).unwrap();
    });
    let dir_res = scratch("out-res");
    World::run(nprocs, |comm| {
        let mut io = FppBackend::new(&dir_res).unwrap();
        run_rank_with(comm, &config, &mut io, Some(&policy), Some(4)).unwrap();
    });

    for rank in 0..nprocs {
        let a = SdfReader::open(dir_ref.join(format!("rank-{rank}/iter-000008.sdf"))).unwrap();
        let b = SdfReader::open(dir_res.join(format!("rank-{rank}/iter-000008.sdf"))).unwrap();
        for var in ["theta", "u", "v", "w"] {
            let path = format!("/iter-8/rank-{rank}/{var}");
            assert_eq!(a.read_f32(&path).unwrap(), b.read_f32(&path).unwrap(), "{path}");
        }
    }
    for d in [dir_ref, ckpt_dir, dir_res] {
        std::fs::remove_dir_all(&d).ok();
    }
}

#[test]
fn restart_without_policy_errors() {
    let config = config();
    World::run(1, |comm| {
        let mut io = NullBackend;
        let err = run_rank_with(comm, &config, &mut io, None, Some(4)).unwrap_err();
        assert!(err.to_string().contains("checkpoint policy"), "{err}");
    });
}

#[test]
fn restart_from_missing_checkpoint_errors() {
    let config = config();
    let dir = scratch("missing");
    let policy = CheckpointPolicy::new(&dir, 4);
    World::run(1, |comm| {
        let mut io = NullBackend;
        assert!(run_rank_with(comm, &config, &mut io, Some(&policy), Some(4)).is_err());
    });
}
