//! End-to-end trace attribution: a 4-client node runs with tracing on and
//! a trace directory configured, an injected [`FaultyBackend`] stall hits
//! one commit, and the flushed DTRC file must tell the whole story —
//! parse cleanly, decompose iteration time into phases (within
//! tolerance), and blame the stall on the backend phase, not the compute
//! ranks. This is the acceptance scenario from the observability issue:
//! the trace file is the evidence, not the process that produced it.

use damaris_core::{Config, NodeRuntime};
use damaris_fs::{FaultOp, FaultPlan, FaultyBackend, LocalDirBackend, StorageBackend};
use damaris_obs::{analyze, load_traces, EventKind, FLAG_SERVER};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("damaris-obs-e2e-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(xml: &str) -> Config {
    Config::from_xml(xml).expect("valid config")
}

/// Drives `clients` through `iterations`, `writes` calls per iteration of
/// `len` doubles each, from one thread per client.
fn drive(clients: Vec<damaris_core::DamarisClient>, iterations: u32, writes: u32, len: usize) {
    std::thread::scope(|s| {
        for client in clients {
            s.spawn(move || {
                let data = vec![1.5f64; len];
                for it in 0..iterations {
                    for _ in 0..writes {
                        client.write_f64("field", it, &data).expect("write");
                    }
                    client.end_iteration(it).expect("end iteration");
                }
            });
        }
    });
}

const CLIENTS: usize = 4;
const ITERATIONS: u32 = 12;
const WRITES_PER_ITER: u32 = 2;
const ELEMS: usize = 2048; // 16 KiB per write
const STALL_ITER: u32 = 6;
// Far above any scheduler preemption a loaded single-core CI host can
// inject into another iteration: the stall must be the slowest thing in
// the timeline by construction, not by luck.
const STALL: Duration = Duration::from_millis(150);

/// The full acceptance scenario: run, stall, analyze the trace file.
#[test]
fn injected_stall_is_attributed_to_the_backend_phase() {
    let out = scratch("stall-out");
    let traces = scratch("stall-traces");
    let cfg = config(&format!(
        r#"<damaris>
             <buffer size="33554432" allocator="partition" queue="1024"/>
             <observability enabled="true" ring_capacity="4096"
                            trace_dir="{}"/>
             <layout name="block" type="double" dimensions="{ELEMS}"/>
             <variable name="field" layout="block"/>
           </damaris>"#,
        traces.display()
    ));
    // Commits happen once per fired iteration, in order, so the nth-commit
    // ordinal *is* the iteration number the stall lands in.
    let plan = FaultPlan::new().stall_nth(FaultOp::Commit, u64::from(STALL_ITER), STALL);
    let faulty = Arc::new(FaultyBackend::new(LocalDirBackend::new(&out).unwrap(), plan));
    let runtime = NodeRuntime::start_with_backend(
        cfg,
        CLIENTS,
        Arc::clone(&faulty) as Arc<dyn StorageBackend>,
        0,
        Vec::new(),
    )
    .expect("start node");

    drive(runtime.clients(), ITERATIONS, WRITES_PER_ITER, ELEMS);

    // The dedicated core feeds the phase histograms from the same flushed
    // records that land in the trace file; wait until it has digested
    // every iteration so the registry view can be cross-checked too.
    let deadline = Instant::now() + Duration::from_secs(30);
    let snap = loop {
        let snap = runtime.metrics_snapshot();
        let fsyncs = snap
            .histograms
            .get("phase.backend_fsync_ns")
            .map_or(0, |h| h.count);
        if fsyncs >= u64::from(ITERATIONS) {
            break snap;
        }
        assert!(Instant::now() < deadline, "server never persisted all iterations");
        std::thread::sleep(Duration::from_millis(10));
    };
    let report = runtime.finish().expect("clean shutdown");
    assert_eq!(report.iterations_persisted, u64::from(ITERATIONS));
    assert_eq!(faulty.injected().stalls.load(Ordering::Relaxed), 1);

    // The trace file parses cleanly: one file for the single incarnation,
    // a clean trailer, no corrupt blocks, and nothing dropped (the rings
    // were sized for the workload).
    let merged = load_traces(&[&traces]).expect("trace dir readable");
    assert_eq!(merged.files, 1, "one node, one incarnation, one file");
    assert!(merged.warnings.is_empty(), "warnings: {:?}", merged.warnings);
    assert_eq!(merged.dropped, 0);

    let a = analyze(&merged.records, merged.dropped);

    // Client-path instrumentation is complete and exact: every write is a
    // WriteCall span with its inner phases, byte counts included.
    let expected_writes = CLIENTS as u64 * u64::from(ITERATIONS) * u64::from(WRITES_PER_ITER);
    let writes = a.phase(EventKind::WriteCall).expect("write_call traced");
    assert_eq!(writes.count, expected_writes);
    assert_eq!(writes.bytes, expected_writes * (ELEMS as u64 * 8));
    for kind in [
        EventKind::AllocWait,
        EventKind::Memcpy,
        EventKind::JournalAppend,
        EventKind::QueuePush,
    ] {
        let p = a.phase(kind).unwrap_or_else(|| panic!("{kind:?} missing"));
        assert!(p.count >= expected_writes, "{kind:?}: {} spans", p.count);
    }

    // Server-path instrumentation too: an Iteration span per fire, plus
    // the idle/dispatch decomposition and the backend sub-phases.
    assert_eq!(a.iterations.len(), ITERATIONS as usize);
    let fsync = a.phase(EventKind::BackendFsync).expect("fsync traced");
    assert!(fsync.count >= u64::from(ITERATIONS));
    for kind in [EventKind::QueueIdle, EventKind::EpeDispatch, EventKind::BackendWrite] {
        assert!(a.phase(kind).is_some(), "{kind:?} missing from trace");
    }

    // Decomposition: the disjoint {idle, dispatch} pair accounts for the
    // observed iteration time within tolerance (the gap is loop overhead
    // and bookkeeping between spans; scheduler noise on a loaded host can
    // push it either way).
    let cov = a.coverage.expect("iterations present");
    assert!(
        (0.60..=1.40).contains(&cov),
        "idle+dispatch explain {:.1}% of iteration time",
        cov * 100.0
    );

    // The stalled iteration sticks out of the timeline by the full stall,
    // and the stall shows up inside the fsync phase where it was injected.
    let stall_ns = STALL.as_nanos() as u64;
    let stalled = a.iterations[&STALL_ITER];
    assert!(stalled >= stall_ns, "iteration {STALL_ITER} took {stalled} ns");
    assert_eq!(
        a.iterations.values().max().copied(),
        Some(stalled),
        "the stalled iteration is the slowest"
    );
    assert!(fsync.max_ns >= stall_ns, "fsync max {} ns", fsync.max_ns);

    // Attribution: the jitter is blamed on the backend path. Every span
    // *containing* the stall (dispatch ⊇ plugin ⊇ fsync) legitimately
    // moves one-for-one with it, so the dominant phase is one of those —
    // and the fsync phase itself explains essentially all the variance,
    // while the compute-rank memcpy explains none of it.
    let dominant = a.dominant_phase().expect(">= 2 iterations with variance");
    assert!(
        matches!(
            dominant.kind,
            EventKind::EpeDispatch | EventKind::PluginRun | EventKind::BackendFsync
        ),
        "dominant phase {:?} is not on the backend path",
        dominant.kind
    );
    let share = |kind: EventKind| {
        a.attribution
            .iter()
            .find(|x| x.kind == kind)
            .map_or(0.0, |x| x.share)
    };
    assert!(
        share(EventKind::BackendFsync) > 0.85,
        "fsync share {:.3}",
        share(EventKind::BackendFsync)
    );
    assert!(
        share(EventKind::Memcpy).abs() < 0.30,
        "memcpy share {:.3}",
        share(EventKind::Memcpy)
    );

    // The registry saw the same story: per-phase histograms fed from the
    // flushed records, with the stall in the fsync histogram's max.
    let fsync_hist = &snap.histograms["phase.backend_fsync_ns"];
    assert!(fsync_hist.max >= stall_ns);
    assert!(snap.histograms["phase.write_call_ns"].count >= expected_writes);

    // The data actually persisted (the trace is telemetry, not the I/O).
    for it in 0..ITERATIONS {
        assert!(out.join(format!("node-0/iter-{it:06}.sdf")).exists());
    }

    std::fs::remove_dir_all(&out).ok();
    std::fs::remove_dir_all(&traces).ok();
}

/// Ring overflow is counted, not silent: with a deliberately tiny ring
/// and a bursty workload, records drop — and the trailer's drop count
/// balances the books against the exact number of records the clients
/// pushed (5 per successful write; `end_iteration` pushes none).
#[test]
fn ring_overflow_is_accounted_in_the_trailer() {
    const DROP_CLIENTS: usize = 2;
    const DROP_ITERS: u32 = 6;
    const DROP_WRITES: u32 = 40;

    let out = scratch("drop-out");
    let traces = scratch("drop-traces");
    let cfg = config(&format!(
        r#"<damaris>
             <buffer size="8388608" allocator="partition" queue="4096"/>
             <observability enabled="true" ring_capacity="64"
                            trace_dir="{}"/>
             <layout name="block" type="double" dimensions="32"/>
             <variable name="field" layout="block"/>
           </damaris>"#,
        traces.display()
    ));
    let runtime = NodeRuntime::start(cfg, DROP_CLIENTS, &out).expect("start node");
    drive(runtime.clients(), DROP_ITERS, DROP_WRITES, 32);
    let report = runtime.finish().expect("clean shutdown");
    assert_eq!(report.iterations_persisted, u64::from(DROP_ITERS));

    let merged = load_traces(&[&traces]).expect("trace dir readable");
    assert!(merged.warnings.is_empty(), "warnings: {:?}", merged.warnings);
    assert!(merged.dropped > 0, "64-slot ring must overflow under 200 writes");

    // Conservation: every client push either reached the file or was
    // counted dropped. The trailer total also covers the server ring, so
    // the client-side deficit can't exceed it.
    let pushed_by_clients =
        DROP_CLIENTS as u64 * u64::from(DROP_ITERS) * u64::from(DROP_WRITES) * 5;
    let flushed_by_clients = merged
        .records
        .iter()
        .filter(|r| r.flags & FLAG_SERVER == 0)
        .count() as u64;
    assert!(
        flushed_by_clients <= pushed_by_clients,
        "{flushed_by_clients} client records flushed, only {pushed_by_clients} pushed"
    );
    let client_deficit = pushed_by_clients - flushed_by_clients;
    assert!(
        client_deficit <= merged.dropped,
        "{client_deficit} client records missing but only {} counted dropped",
        merged.dropped
    );

    // And the analyzer carries the count through to the report.
    let a = analyze(&merged.records, merged.dropped);
    assert_eq!(a.dropped, merged.dropped);
    assert!(a.render().contains("dropped by ring overflow"));

    std::fs::remove_dir_all(&out).ok();
    std::fs::remove_dir_all(&traces).ok();
}

/// Tracing disabled is genuinely off: no trace file appears even with a
/// trace directory configured, and the run is otherwise unaffected.
#[test]
fn disabled_observability_writes_no_trace_file() {
    let out = scratch("off-out");
    let traces = scratch("off-traces");
    let cfg = config(&format!(
        r#"<damaris>
             <buffer size="4194304" allocator="partition" queue="256"/>
             <observability enabled="false" ring_capacity="1024"
                            trace_dir="{}"/>
             <layout name="block" type="double" dimensions="64"/>
             <variable name="field" layout="block"/>
           </damaris>"#,
        traces.display()
    ));
    let runtime = NodeRuntime::start(cfg, 2, &out).expect("start node");
    drive(runtime.clients(), 3, 2, 64);
    let report = runtime.finish().expect("clean shutdown");
    assert_eq!(report.iterations_persisted, 3);

    let merged = load_traces(&[&traces]).expect("empty dir is fine");
    assert_eq!(merged.files, 0, "disabled tracing must not create files");

    std::fs::remove_dir_all(&out).ok();
    std::fs::remove_dir_all(&traces).ok();
}
