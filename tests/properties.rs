//! Workspace-level property tests over the public APIs: invariants that
//! must hold across crate boundaries.

use damaris_repro::compress::Pipeline;
use damaris_repro::format::{DataType, DatasetOptions, Layout, SdfReader, SdfWriter};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch_file(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join("damaris-prop-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(format!("{tag}-{}-{n}.sdf", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any f32 dataset written through any lossless filter chain reads back
    /// bit-identically, whatever the shape.
    #[test]
    fn sdf_filter_roundtrip(
        values in proptest::collection::vec(any::<f32>().prop_filter("finite", |v| v.is_finite()), 1..512),
        filter in proptest::sample::select(vec!["", "rle", "lzss", "huff", "lzss|huff", "lzss|rle"]),
        chunk in proptest::sample::select(vec![0u64, 3, 64, 1000]),
    ) {
        let path = scratch_file("roundtrip");
        let layout = Layout::new(DataType::F32, &[values.len() as u64]);
        let mut w = SdfWriter::create(&path).unwrap();
        let mut opts = DatasetOptions::plain().with_chunk_dim0(chunk);
        if !filter.is_empty() {
            opts = opts.with_filter(filter);
        }
        w.write_dataset_f32_opts("/v", &layout, &values, &opts).unwrap();
        w.finish().unwrap();
        let r = SdfReader::open(&path).unwrap();
        let back = r.read_f32("/v").unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// The lossy 16-bit pipeline keeps every value within the binary16
    /// relative-error bound (normal range).
    #[test]
    fn precision16_error_bound(values in proptest::collection::vec(1.0f32..60000.0, 1..256)) {
        let pipeline = Pipeline::from_spec("precision16|lzss|huff").unwrap();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let (enc, _) = pipeline.encode(&bytes).unwrap();
        let dec = pipeline.decode(&enc).unwrap();
        for (orig, chunk) in values.iter().zip(dec.chunks_exact(4)) {
            let back = f32::from_le_bytes(chunk.try_into().unwrap());
            prop_assert!(((orig - back) / orig).abs() <= 1.0 / 2048.0, "{} -> {}", orig, back);
        }
    }

    /// The mini-MPI allreduce agrees with a serial reduction for any
    /// rank count and payload.
    #[test]
    fn allreduce_matches_serial(
        nprocs in 1usize..7,
        base in proptest::collection::vec(-1e6f64..1e6, 1..8),
    ) {
        let expected: Vec<f64> = base
            .iter()
            .map(|v| (0..nprocs).map(|r| v + r as f64).sum())
            .collect();
        let results = damaris_repro::mpi::World::run(nprocs, |comm| {
            let mine: Vec<f64> = base.iter().map(|v| v + comm.rank() as f64).collect();
            comm.allreduce_sum_f64(&mine)
        });
        for r in results {
            for (a, b) in r.iter().zip(&expected) {
                prop_assert!((a - b).abs() < 1e-6 * b.abs().max(1.0));
            }
        }
    }

    /// Simulated phases are deterministic in the seed and monotone in data
    /// volume for the FPP strategy (more bytes → no faster).
    #[test]
    fn sim_seed_determinism_and_volume_monotonicity(seed in 0u64..1000) {
        use damaris_repro::sim::{platform, run_io_phase, Strategy, WorkloadSpec};
        let p = platform::blueprint();
        let small = WorkloadSpec::cm1_blueprint(16.0);
        let large = WorkloadSpec::cm1_blueprint(64.0);
        let a = run_io_phase(&p, &small, Strategy::FilePerProcess, 256, seed);
        let b = run_io_phase(&p, &small, Strategy::FilePerProcess, 256, seed);
        prop_assert_eq!(a.phase_duration, b.phase_duration);
        let c = run_io_phase(&p, &large, Strategy::FilePerProcess, 256, seed);
        prop_assert!(c.phase_duration >= a.phase_duration);
    }
}

#[test]
fn sdf_rejects_truncation_anywhere() {
    // Any truncation of a valid file must be detected at open or read.
    let path = scratch_file("trunc");
    let layout = Layout::new(DataType::F32, &[64]);
    let mut w = SdfWriter::create(&path).unwrap();
    let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
    w.write_dataset_f32_opts(
        "/v",
        &layout,
        &data,
        &DatasetOptions::plain().with_filter("lzss"),
    )
    .unwrap();
    w.finish().unwrap();
    let bytes = std::fs::read(&path).unwrap();
    for cut in [1, 8, 20, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let outcome = SdfReader::open(&path).and_then(|r| r.read_f32("/v"));
        assert!(outcome.is_err(), "truncation at {cut} went unnoticed");
    }
    std::fs::remove_file(&path).ok();
}
